"""Tests for bootstrap and temporal stability analysis."""

import numpy as np
import pytest

from repro.analysis.stability import (
    bootstrap_stability,
    temporal_stability,
)


@pytest.fixture()
def blobs(rng):
    centers = 8.0 * np.eye(3, 4)
    x = np.vstack([
        center + rng.normal(scale=0.3, size=(30, 4)) for center in centers
    ])
    labels = np.repeat(np.arange(3), 30)
    return x, labels


@pytest.fixture()
def smeared(rng):
    # Two barely separated groups: unstable under resampling.
    x = np.vstack([
        rng.normal(0.0, 1.0, size=(40, 3)),
        rng.normal(0.7, 1.0, size=(40, 3)),
    ])
    labels = np.repeat([0, 1], 40)
    return x, labels


class TestBootstrapStability:
    def test_well_separated_is_stable(self, blobs):
        x, labels = blobs
        result = bootstrap_stability(x, labels, n_replicates=5,
                                     random_state=0)
        assert result.mean_ari > 0.95
        assert all(v > 0.9 for v in result.per_cluster_stability.values())

    def test_smeared_is_less_stable(self, blobs, smeared):
        x_good, labels_good = blobs
        x_bad, labels_bad = smeared
        good = bootstrap_stability(x_good, labels_good, n_replicates=5,
                                   random_state=0)
        bad = bootstrap_stability(x_bad, labels_bad, n_replicates=5,
                                  n_clusters=2, random_state=0)
        assert good.mean_ari > bad.mean_ari

    def test_least_stable_cluster(self, blobs):
        x, labels = blobs
        result = bootstrap_stability(x, labels, n_replicates=4,
                                     random_state=0)
        assert result.least_stable_cluster() in set(labels.tolist())

    def test_replicate_count(self, blobs):
        x, labels = blobs
        result = bootstrap_stability(x, labels, n_replicates=3,
                                     random_state=0)
        assert result.replicate_ari.shape == (3,)

    def test_validation(self, blobs):
        x, labels = blobs
        with pytest.raises(ValueError, match="sample_fraction"):
            bootstrap_stability(x, labels, sample_fraction=0.0)
        with pytest.raises(ValueError, match="n_replicates"):
            bootstrap_stability(x, labels, n_replicates=1)
        with pytest.raises(ValueError, match="labels length"):
            bootstrap_stability(x, labels[:-1])

    def test_on_generated_profile(self, small_dataset, small_profile):
        result = bootstrap_stability(
            small_profile.features, small_profile.labels,
            n_replicates=3, sample_fraction=0.7, random_state=0,
        )
        # The paper-style clusters are highly stable under resampling.
        assert result.mean_ari > 0.9


class TestTemporalStability:
    def test_windows_agree_on_generated_data(self, small_dataset):
        agreement, labelings = temporal_stability(
            small_dataset, n_windows=2, n_clusters=9
        )
        assert agreement.shape == (2, 2)
        assert len(labelings) == 2
        # The deployment's profiles persist across the two halves of the
        # study (the premise of the paper's planning use cases).
        assert agreement[0, 1] > 0.9

    def test_window_count_validated(self, small_dataset):
        with pytest.raises(ValueError, match="n_windows"):
            temporal_stability(small_dataset, n_windows=1)


class TestWindowTotals:
    def test_window_totals_partition_full_totals(self, small_dataset):
        model = small_dataset.model
        n = small_dataset.calendar.n_hours
        first = model.window_totals(slice(0, n // 2))
        second = model.window_totals(slice(n // 2, n))
        np.testing.assert_allclose(first + second, model.totals(), rtol=1e-9)

    def test_window_totals_nonnegative(self, small_dataset):
        out = small_dataset.model.window_totals(slice(0, 200))
        assert np.all(out >= 0)

    def test_empty_window_rejected(self, small_dataset):
        with pytest.raises(ValueError, match="no hours"):
            small_dataset.model.window_totals(slice(5, 5))
