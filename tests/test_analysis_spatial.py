"""Tests for the spatial (city/surrounding) cluster analysis."""

import numpy as np
import pytest

from repro.analysis.spatial import (
    city_cluster_inventory,
    paper_geography_checks,
    spatial_breakdown,
)
from repro.datagen.antennas import Antenna
from repro.datagen.archetypes import Archetype
from repro.datagen.environments import EnvironmentType, Surrounding


def make_antenna(i, city, is_paris, surrounding=Surrounding.URBAN):
    return Antenna(
        antenna_id=i, name=f"{city.upper()}-METRO-{i:04d}", site_id=0,
        env_type=EnvironmentType.METRO, city=city, is_paris=is_paris,
        surrounding=surrounding, lat=48.0, lon=2.0,
        archetype=Archetype.GENERAL_USE,
    )


class TestSpatialBreakdown:
    @pytest.fixture()
    def toy(self):
        antennas = [
            make_antenna(0, "Paris", True),
            make_antenna(1, "Paris", True),
            make_antenna(2, "Lyon", False, Surrounding.SUBURBAN),
            make_antenna(3, "Lille", False),
        ]
        labels = [0, 0, 1, 1]
        return spatial_breakdown(antennas, labels)

    def test_paris_shares(self, toy):
        assert toy.paris_shares[0] == 1.0
        assert toy.paris_shares[1] == 0.0

    def test_city_shares(self, toy):
        assert toy.city_shares[0] == {"Paris": 1.0}
        assert toy.city_shares[1] == {"Lyon": 0.5, "Lille": 0.5}

    def test_surrounding_shares(self, toy):
        assert toy.surrounding_shares[1][Surrounding.SUBURBAN] == 0.5

    def test_top_city(self, toy):
        assert toy.top_city(0) == ("Paris", 1.0)
        with pytest.raises(KeyError):
            toy.top_city(9)

    def test_capital_classification(self, toy):
        assert toy.is_capital_cluster(0)
        assert not toy.is_capital_cluster(1)
        assert toy.non_capital_clusters() == [1]

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="labels length"):
            spatial_breakdown([make_antenna(0, "Paris", True)], [0, 1])

    def test_on_generated_profile(self, small_dataset, small_profile):
        breakdown = spatial_breakdown(small_dataset.antennas,
                                      small_profile.labels)
        # The ~480-antenna run has more sampling noise than the full
        # deployment, so the commuter Paris threshold is relaxed a touch.
        checks = paper_geography_checks(breakdown, commuter_threshold=0.75)
        failed = [name for name, ok in checks.items() if not ok]
        assert not failed, f"failed geography checks: {failed}"

    def test_cluster7_cities_are_metro_cities(self, small_dataset,
                                              small_profile):
        breakdown = spatial_breakdown(small_dataset.antennas,
                                      small_profile.labels)
        assert set(breakdown.city_shares[7]) <= {
            "Lille", "Lyon", "Rennes", "Toulouse"
        }


class TestInventory:
    def test_counts(self):
        antennas = [
            make_antenna(0, "Paris", True),
            make_antenna(1, "Paris", True),
            make_antenna(2, "Lyon", False),
        ]
        inventory = city_cluster_inventory(antennas, [0, 1, 0])
        assert inventory["Paris"] == {0: 1, 1: 1}
        assert inventory["Lyon"] == {0: 1}

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels length"):
            city_cluster_inventory([make_antenna(0, "Paris", True)], [])


class TestGeographyChecks:
    def test_missing_cluster_rejected(self):
        antennas = [make_antenna(0, "Paris", True)]
        breakdown = spatial_breakdown(antennas, [0])
        with pytest.raises(ValueError, match="lacks clusters"):
            paper_geography_checks(breakdown)
