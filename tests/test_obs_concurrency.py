"""Concurrent scrape tests: /metrics under load, exemplar invariants.

Hammers a live serve node with classify traffic on several threads
while other threads scrape both expositions, and asserts every scrape
is internally consistent: parseable text, monotonic counters, and
exemplars that honour the OpenMetrics shape (trace id present, value
within the bucket bound they annotate).
"""

import json
import re
import threading
import urllib.request

import pytest

from repro.obs.alerts import AlertManager, default_rules
from repro.obs.registry import MetricsRegistry, set_registry
from repro.obs.slo import SLOEngine, default_slos
from repro.obs.trace import disable_tracing, enable_tracing, span
from repro.serve import ProfileService, ServeMetrics, make_server
from tests.conftest import build_frozen_profile

#: OpenMetrics exemplar suffix: `... N # {trace_id="..."} value`.
_EXEMPLAR_LINE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)\{(?P<labels>[^}]*)\} '
    r'(?P<count>\S+) # \{trace_id="(?P<trace>[0-9a-f]+)"\} '
    r'(?P<value>\S+)$'
)


@pytest.fixture()
def traced_server():
    """Live server whose metrics share one registry, tracing on."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    store = enable_tracing(capacity=4096, clear=True)
    frozen, _ = build_frozen_profile()
    service = ProfileService(
        frozen, max_batch=16, n_workers=2,
        metrics=ServeMetrics(registry=registry),
    )
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", frozen, service, store
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        disable_tracing()
        store.clear()
        set_registry(previous)


@pytest.fixture()
def slo_server():
    """Live server with an SLO engine + alert manager attached.

    Every scrape of /metrics, /metrics.json, /slo, and /healthz ticks
    the engine and re-evaluates the rules from the handler thread, so
    this is the fixture that exercises tick()/evaluate() concurrency.
    """
    registry = MetricsRegistry()
    previous = set_registry(registry)
    store = enable_tracing(capacity=4096, clear=True)
    frozen, _ = build_frozen_profile()
    service = ProfileService(
        frozen, max_batch=16, n_workers=2,
        metrics=ServeMetrics(registry=registry),
    )
    engine = SLOEngine(default_slos(registry), registry=registry)
    manager = AlertManager(
        engine, default_rules(engine), registry=registry
    )
    server = make_server(
        service, port=0, slo_engine=engine, alert_manager=manager
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", frozen, service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        disable_tracing()
        store.clear()
        set_registry(previous)


def _get(url):
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return response.status, response.read().decode("utf-8")


class TestConcurrentScrape:
    def test_scrapes_stay_consistent_under_load(self, traced_server):
        base_url, frozen, service, _ = traced_server
        stop = threading.Event()
        errors = []

        def traffic(worker):
            row = worker % (len(frozen.features) - 4)
            while not stop.is_set():
                with span("load.classify", worker=worker):
                    service.classify(frozen.features[row:row + 4],
                                     timeout=30.0)

        def scrape_text(results):
            while not stop.is_set():
                try:
                    status, text = _get(f"{base_url}/metrics")
                    assert status == 200
                    for line in text.splitlines():
                        if not line or line.startswith("#"):
                            continue
                        if " # {" in line:
                            assert _EXEMPLAR_LINE.match(line), line
                        else:
                            float(line.rsplit(" ", 1)[1])
                    results.append(text)
                except Exception as exc:  # noqa: BLE001 - collected below
                    errors.append(exc)
                    return

        def scrape_json(results):
            while not stop.is_set():
                try:
                    status, body = _get(f"{base_url}/metrics.json")
                    assert status == 200
                    results.append(json.loads(body))
                except Exception as exc:  # noqa: BLE001 - collected below
                    errors.append(exc)
                    return

        # One result list per scraper: ordering is only meaningful
        # within a single scraper's sequence of requests.
        text_lists = [[], []]
        snapshots = []
        threads = (
            [threading.Thread(target=traffic, args=(w,)) for w in range(3)]
            + [threading.Thread(target=scrape_text, args=(results,))
               for results in text_lists]
            + [threading.Thread(target=scrape_json, args=(snapshots,))]
        )
        for worker in threads:
            worker.start()
        # Let traffic and scrapes overlap for a bounded burst.
        deadline = threading.Event()
        deadline.wait(1.0)
        stop.set()
        for worker in threads:
            worker.join(10.0)
        assert not errors, errors
        assert all(text_lists) and snapshots

        # Counters must be monotonic across sequential scrapes of one
        # scraper thread (requests_total never goes backwards).
        def requests_total(text):
            for line in text.splitlines():
                if line.startswith("repro_serve_requests_total"):
                    return float(line.rsplit(" ", 1)[1])
            return 0.0

        for texts in text_lists:
            values = [requests_total(text) for text in texts]
            assert all(b >= a for a, b in zip(values, values[1:]))

    def test_exemplar_invariants_after_load(self, traced_server):
        base_url, frozen, service, store = traced_server
        for row in range(6):
            with span("load.classify", row=row):
                service.classify(frozen.features[row:row + 2], timeout=30.0)

        _, text = _get(f"{base_url}/metrics")
        exemplar_lines = [
            line for line in text.splitlines() if " # {" in line
        ]
        assert exemplar_lines, "latency histogram retained no exemplars"
        trace_ids = {record.trace_id for record in store.spans()}
        for line in exemplar_lines:
            match = _EXEMPLAR_LINE.match(line)
            assert match, line
            # The annotated observation fits the bucket it landed in.
            labels = dict(
                pair.split("=", 1) for pair in match["labels"].split(",")
            )
            bound = labels["le"].strip('"')
            if bound != "+Inf":
                assert float(match["value"]) <= float(bound)
            # And its trace id resolves to a span this process recorded.
            assert match["trace"] in trace_ids

        # The structured exemplar view agrees with the text exposition.
        family = service.metrics.registry.get(
            "repro_serve_request_latency_seconds"
        )
        for _, child in family.series():
            for exemplar in child.exemplars():
                assert exemplar.trace_id in trace_ids
                if exemplar.bucket_le != float("inf"):
                    assert exemplar.value <= exemplar.bucket_le


class TestConcurrentSLOScrape:
    """Scrape-triggered tick()/evaluate() racing across handler threads.

    Every /metrics, /metrics.json, /slo, and /healthz request ticks the
    engine from its own handler thread; interleaved ticks used to lose
    the append race and turn one scrape into a 500 (and /healthz into a
    spurious failure).  Hammer all four endpoints at once and require
    that none of them ever errors.
    """

    def test_tick_racing_scrapes_never_error(self, slo_server):
        base_url, frozen, service = slo_server
        stop = threading.Event()
        errors = []
        paths = ("/metrics", "/metrics.json", "/slo", "/healthz")
        statuses = {path: [] for path in paths}

        def traffic(worker):
            row = worker % (len(frozen.features) - 4)
            while not stop.is_set():
                with span("load.classify", worker=worker):
                    service.classify(frozen.features[row:row + 4],
                                     timeout=30.0)

        def scrape(path):
            while not stop.is_set():
                try:
                    status, _ = _get(f"{base_url}{path}")
                    statuses[path].append(status)
                except Exception as exc:  # noqa: BLE001 - collected below
                    errors.append((path, exc))
                    return

        threads = (
            [threading.Thread(target=traffic, args=(w,)) for w in range(2)]
            # Two scrapers per path so each endpoint also races itself.
            + [threading.Thread(target=scrape, args=(path,))
               for path in paths for _ in range(2)]
        )
        for worker in threads:
            worker.start()
        deadline = threading.Event()
        deadline.wait(1.0)
        stop.set()
        for worker in threads:
            worker.join(10.0)
        # urlopen raises on any non-2xx status, so an interleaved-tick
        # ValueError would surface here as an HTTPError 500.
        assert not errors, errors
        for path in paths:
            assert statuses[path], f"no successful scrape of {path}"
            assert set(statuses[path]) == {200}
