"""Tests for classification metrics and the stratified split."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    f1_scores,
    macro_f1,
    train_test_split,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, 2, 3], [1, 2, 3]) == 1.0

    def test_half(self):
        assert accuracy([1, 1, 0, 0], [1, 0, 0, 1]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            accuracy([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            accuracy([], [])


class TestConfusionMatrix:
    def test_hand_computed(self):
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])

    def test_diagonal_sums_to_correct(self):
        y_true = [0, 1, 2, 2, 1]
        y_pred = [0, 1, 1, 2, 0]
        matrix = confusion_matrix(y_true, y_pred)
        assert np.trace(matrix) == 3

    def test_explicit_labels_order(self):
        matrix = confusion_matrix([1, 0], [1, 0], labels=[1, 0])
        np.testing.assert_array_equal(matrix, [[1, 0], [0, 1]])

    def test_rows_sum_to_class_counts(self):
        y_true = np.array([0, 0, 0, 1, 1, 2])
        y_pred = np.array([0, 1, 2, 1, 1, 2])
        matrix = confusion_matrix(y_true, y_pred)
        np.testing.assert_array_equal(matrix.sum(axis=1), [3, 2, 1])


class TestF1:
    def test_perfect_f1(self):
        np.testing.assert_allclose(f1_scores([0, 1], [0, 1]), [1.0, 1.0])

    def test_hand_computed(self):
        # Class 0: precision 1/2, recall 1/1 -> F1 = 2/3.
        scores = f1_scores([0, 1, 1], [0, 0, 1])
        assert scores[0] == pytest.approx(2.0 / 3.0)

    def test_absent_prediction_zero(self):
        scores = f1_scores([0, 1], [0, 0])
        assert scores[1] == 0.0

    def test_macro_mean(self):
        scores = f1_scores([0, 1, 1], [0, 0, 1])
        assert macro_f1([0, 1, 1], [0, 0, 1]) == pytest.approx(scores.mean())


class TestSplit:
    def test_sizes(self, rng):
        x = rng.normal(size=(100, 3))
        y = rng.integers(0, 2, size=100)
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, test_fraction=0.25)
        assert x_tr.shape[0] + x_te.shape[0] == 100
        assert abs(x_te.shape[0] - 25) <= 2

    def test_stratification(self, rng):
        x = rng.normal(size=(100, 2))
        y = np.array([0] * 80 + [1] * 20)
        _, _, y_tr, y_te = train_test_split(x, y, test_fraction=0.25,
                                            random_state=1)
        assert np.sum(y_te == 1) == 5
        assert np.sum(y_te == 0) == 20

    def test_singleton_class_stays_in_train(self, rng):
        x = rng.normal(size=(10, 2))
        y = np.array([0] * 9 + [1])
        _, _, y_tr, y_te = train_test_split(x, y, test_fraction=0.3)
        assert 1 in y_tr

    def test_deterministic(self, rng):
        x = rng.normal(size=(50, 2))
        y = rng.integers(0, 3, size=50)
        a = train_test_split(x, y, random_state=5)
        b = train_test_split(x, y, random_state=5)
        np.testing.assert_array_equal(a[1], b[1])

    def test_bad_fraction(self, rng):
        x = rng.normal(size=(10, 2))
        y = np.zeros(10)
        with pytest.raises(ValueError, match="test_fraction"):
            train_test_split(x, y, test_fraction=0.0)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError, match="sample count"):
            train_test_split(rng.normal(size=(10, 2)), np.zeros(9))
