"""Tests for atomic checkpoint writes (crash mid-write leaves no torn file)."""

import numpy as np
import pytest

import repro.stream.checkpoint as checkpoint_module
from repro.stream.checkpoint import load_state, save_state


@pytest.fixture()
def state():
    return {
        "matrix": np.arange(12, dtype=float).reshape(3, 4),
        "count": 7,
        "rate": 0.25,
        "name": "node-1",
        "flag": True,
    }


class TestAtomicSave:
    def test_roundtrip(self, tmp_path, state):
        path = tmp_path / "state.npz"
        save_state(path, state)
        restored = load_state(path)
        assert np.array_equal(restored["matrix"], state["matrix"])
        assert restored["count"] == 7 and isinstance(restored["count"], int)
        assert restored["rate"] == 0.25
        assert restored["name"] == "node-1"
        assert restored["flag"] is True

    def test_no_staging_file_left_behind(self, tmp_path, state):
        path = tmp_path / "state.npz"
        save_state(path, state)
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["state.npz"]

    def test_suffix_appended_like_numpy(self, tmp_path, state):
        # np.savez_compressed appends .npz to suffix-less paths; the
        # atomic path must preserve that contract.
        save_state(tmp_path / "state", state)
        assert (tmp_path / "state.npz").exists()
        assert load_state(tmp_path / "state.npz")["count"] == 7

    def test_crash_mid_write_preserves_previous_checkpoint(
            self, tmp_path, state, monkeypatch):
        path = tmp_path / "state.npz"
        save_state(path, state)
        good_bytes = path.read_bytes()

        real_savez = np.savez_compressed

        def torn_savez(handle, **arrays):
            # Write a partial archive, then die — simulating a kill
            # mid-serialization.
            real_savez(handle, **arrays)
            handle.truncate(10)
            raise OSError("killed mid-write")

        monkeypatch.setattr(
            checkpoint_module.np, "savez_compressed", torn_savez
        )
        with pytest.raises(OSError, match="killed mid-write"):
            save_state(path, {"count": 99})

        # The destination still holds the previous complete checkpoint
        # and no .tmp debris remains.
        assert path.read_bytes() == good_bytes
        assert load_state(path)["count"] == 7
        assert [p.name for p in tmp_path.iterdir()] == ["state.npz"]

    def test_crash_on_first_write_leaves_nothing(self, tmp_path, monkeypatch):
        path = tmp_path / "fresh.npz"

        def exploding_savez(handle, **arrays):
            handle.write(b"partial")
            raise OSError("killed mid-write")

        monkeypatch.setattr(
            checkpoint_module.np, "savez_compressed", exploding_savez
        )
        with pytest.raises(OSError):
            save_state(path, {"count": 1})
        assert list(tmp_path.iterdir()) == []

    def test_overwrite_is_atomic_replace(self, tmp_path, state):
        path = tmp_path / "state.npz"
        save_state(path, state)
        save_state(path, {"count": 42})
        assert load_state(path)["count"] == 42

    def test_reserved_key_rejected_before_touching_disk(self, tmp_path):
        path = tmp_path / "state.npz"
        with pytest.raises(ValueError, match="reserved"):
            save_state(path, {"__manifest__": 1})
        assert list(tmp_path.iterdir()) == []
