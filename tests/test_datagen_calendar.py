"""Tests for the study calendar and event scheduling."""

import numpy as np
import pytest

from repro.datagen.calendar import (
    Event,
    NBA_EVENT_HOURS,
    SIRHA_DAYS,
    STRIKE_DAY,
    STUDY_END,
    STUDY_START,
    StudyCalendar,
    match_days,
    nba_paris_event,
    random_expo_events,
    random_stadium_events,
    sirha_lyon_events,
)


class TestStudyCalendar:
    def test_default_period_matches_paper(self):
        cal = StudyCalendar()
        assert cal.start == np.datetime64("2022-11-21T00", "h")
        assert cal.end == np.datetime64("2023-01-24T23", "h")

    def test_n_hours(self):
        cal = StudyCalendar()
        # 2022-11-21 .. 2023-01-24 inclusive = 65 days.
        assert cal.n_hours == 65 * 24

    def test_hours_grid_hourly(self):
        cal = StudyCalendar()
        hours = cal.hours
        assert hours.shape == (cal.n_hours,)
        deltas = np.diff(hours) / np.timedelta64(1, "h")
        assert np.all(deltas == 1)

    def test_hour_of_day_cycles(self):
        cal = StudyCalendar()
        hod = cal.hour_of_day()
        assert hod[0] == 0
        assert hod[23] == 23
        assert hod[24] == 0

    def test_day_of_week_iso(self):
        # 2022-11-21 was a Monday.
        cal = StudyCalendar()
        assert cal.day_of_week()[0] == 0

    def test_weekend_mask(self):
        cal = StudyCalendar()
        weekend = cal.is_weekend()
        # First Saturday of the period: 2022-11-26 (day index 5).
        assert not weekend[0]
        assert weekend[5 * 24]
        assert weekend[6 * 24]
        assert not weekend[7 * 24]

    def test_strike_day_mask(self):
        cal = StudyCalendar()
        strike = cal.is_strike_day()
        assert strike.sum() == 24
        assert np.all(cal.dates()[strike] == STRIKE_DAY)

    def test_index_of(self):
        cal = StudyCalendar()
        assert cal.index_of(STUDY_START) == 0
        assert cal.index_of(np.datetime64("2022-11-22T05", "h")) == 29

    def test_index_of_out_of_range(self):
        cal = StudyCalendar()
        with pytest.raises(ValueError, match="outside calendar"):
            cal.index_of(np.datetime64("2024-01-01T00", "h"))

    def test_window_slice(self):
        cal = StudyCalendar()
        window = cal.window(
            np.datetime64("2023-01-04T00", "h"), np.datetime64("2023-01-05T23", "h")
        )
        assert window.stop - window.start == 48

    def test_temporal_window_spans_21_days(self):
        cal = StudyCalendar()
        window = cal.temporal_window()
        assert window.stop - window.start == 21 * 24

    def test_inverted_calendar_rejected(self):
        with pytest.raises(ValueError, match="precedes"):
            StudyCalendar(STUDY_END, STUDY_START)

    def test_inverted_window_rejected(self):
        cal = StudyCalendar()
        with pytest.raises(ValueError, match="precedes"):
            cal.window(cal.end, cal.start)


class TestEvent:
    def test_mask_covers_event_hours(self):
        cal = StudyCalendar()
        event = Event(
            np.datetime64("2023-01-10T19", "h"), np.datetime64("2023-01-10T22", "h")
        )
        mask = event.mask(cal)
        assert mask.sum() == 4

    def test_inverted_event_rejected(self):
        with pytest.raises(ValueError, match="precedes"):
            Event(np.datetime64("2023-01-10T22", "h"),
                  np.datetime64("2023-01-10T19", "h"))

    def test_nonpositive_intensity_rejected(self):
        with pytest.raises(ValueError, match="intensity"):
            Event(np.datetime64("2023-01-10T19", "h"),
                  np.datetime64("2023-01-10T22", "h"), intensity=0.0)


class TestSchedules:
    def test_match_days_are_wed_sat_sun(self):
        cal = StudyCalendar()
        days = match_days(cal)
        dows = (days.astype("datetime64[D]").view("int64") + 3) % 7
        assert set(dows.tolist()) <= {2, 5, 6}
        assert days.size > 20  # ~3 per week over 9+ weeks

    def test_stadium_events_on_match_days(self, rng):
        cal = StudyCalendar()
        events = random_stadium_events(cal, rng)
        fixture = set(match_days(cal))
        for event in events:
            assert event.start.astype("datetime64[D]") in fixture

    def test_stadium_events_are_evening(self, rng):
        cal = StudyCalendar()
        for event in random_stadium_events(cal, rng):
            hour = int((event.start - event.start.astype("datetime64[D]"))
                       / np.timedelta64(1, "h"))
            assert 19 <= hour <= 20

    def test_stadium_attendance_probability_validated(self, rng):
        with pytest.raises(ValueError, match="attendance_probability"):
            random_stadium_events(StudyCalendar(), rng, attendance_probability=0.0)

    def test_expo_events_daytime_multiday(self, rng):
        cal = StudyCalendar()
        events = random_expo_events(cal, rng)
        assert events
        for event in events:
            start_hour = int((event.start - event.start.astype("datetime64[D]"))
                             / np.timedelta64(1, "h"))
            assert start_hour == 9

    def test_nba_event_matches_paper(self):
        event = nba_paris_event()
        assert event.start == NBA_EVENT_HOURS[0]
        assert event.start.astype("datetime64[D]") == STRIKE_DAY

    def test_sirha_events_cover_19_to_24(self):
        events = sirha_lyon_events()
        days = {e.start.astype("datetime64[D]") for e in events}
        assert len(events) == 6
        assert min(days) == SIRHA_DAYS[0]
        assert max(days) == SIRHA_DAYS[1]
