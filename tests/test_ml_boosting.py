"""Tests for the gradient-boosted tree classifier."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingClassifier


@pytest.fixture()
def binary_data(rng):
    x = rng.uniform(-1, 1, size=(400, 4))
    y = np.where(x[:, 0] + 0.5 * x[:, 1] ** 2 > 0.2, 1, 0)
    return x, y


@pytest.fixture()
def multiclass_data(rng):
    x = rng.uniform(-1, 1, size=(500, 5))
    y = (x[:, 0] > 0).astype(int) + 2 * (x[:, 1] > 0.3).astype(int)
    return x, y


class TestFit:
    def test_binary_accuracy(self, binary_data):
        x, y = binary_data
        model = GradientBoostingClassifier(n_estimators=40,
                                           random_state=0).fit(x, y)
        assert model.score(x, y) > 0.95

    def test_multiclass_accuracy(self, multiclass_data):
        x, y = multiclass_data
        model = GradientBoostingClassifier(n_estimators=40,
                                           random_state=0).fit(x, y)
        assert model.score(x, y) > 0.93
        assert model.predict_proba(x).shape == (500, 4)

    def test_generalizes(self, binary_data, rng):
        x, y = binary_data
        model = GradientBoostingClassifier(n_estimators=40,
                                           random_state=0).fit(x, y)
        x_test = rng.uniform(-1, 1, size=(300, 4))
        y_test = np.where(x_test[:, 0] + 0.5 * x_test[:, 1] ** 2 > 0.2, 1, 0)
        assert model.score(x_test, y_test) > 0.85

    def test_more_rounds_improve_fit(self, binary_data):
        x, y = binary_data
        short = GradientBoostingClassifier(n_estimators=3,
                                           random_state=0).fit(x, y)
        long = GradientBoostingClassifier(n_estimators=60,
                                          random_state=0).fit(x, y)
        assert long.score(x, y) >= short.score(x, y)

    def test_proba_rows_sum_to_one(self, multiclass_data):
        x, y = multiclass_data
        model = GradientBoostingClassifier(n_estimators=10,
                                           random_state=0).fit(x, y)
        np.testing.assert_allclose(model.predict_proba(x).sum(axis=1), 1.0)

    def test_deterministic(self, binary_data):
        x, y = binary_data
        a = GradientBoostingClassifier(n_estimators=10, subsample=0.8,
                                       random_state=5).fit(x, y)
        b = GradientBoostingClassifier(n_estimators=10, subsample=0.8,
                                       random_state=5).fit(x, y)
        np.testing.assert_allclose(a.predict_proba(x), b.predict_proba(x))

    def test_string_labels(self, rng):
        x = rng.normal(size=(200, 3))
        y = np.where(x[:, 0] > 0, "yes", "no")
        model = GradientBoostingClassifier(n_estimators=20,
                                           random_state=0).fit(x, y)
        assert set(model.predict(x)) <= {"yes", "no"}
        assert model.score(x, y) > 0.95

    def test_subsample_runs(self, binary_data):
        x, y = binary_data
        model = GradientBoostingClassifier(
            n_estimators=20, subsample=0.5, random_state=0
        ).fit(x, y)
        assert model.score(x, y) > 0.9

    def test_surrogate_quality_on_rsca(self, small_profile):
        """Boosting is a viable surrogate on the real task (paper cites
        XGBoost as a TreeSHAP-compatible alternative)."""
        model = GradientBoostingClassifier(
            n_estimators=25, max_depth=3, random_state=0
        ).fit(small_profile.features, small_profile.labels)
        assert model.score(small_profile.features,
                           small_profile.labels) > 0.9


class TestValidation:
    def test_parameters(self):
        with pytest.raises(ValueError, match="n_estimators"):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ValueError, match="learning_rate"):
            GradientBoostingClassifier(learning_rate=0.0)
        with pytest.raises(ValueError, match="max_depth"):
            GradientBoostingClassifier(max_depth=0)
        with pytest.raises(ValueError, match="subsample"):
            GradientBoostingClassifier(subsample=0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            GradientBoostingClassifier().predict(np.ones((2, 2)))

    def test_feature_count_checked(self, binary_data):
        x, y = binary_data
        model = GradientBoostingClassifier(n_estimators=3,
                                           random_state=0).fit(x, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((2, 9)))

    def test_label_shape(self, rng):
        with pytest.raises(ValueError, match="one label per row"):
            GradientBoostingClassifier().fit(rng.normal(size=(5, 2)),
                                             np.zeros(4))
