"""Tests for the chi-square / Cramér's V association machinery."""

import numpy as np
import pytest

from repro.analysis.association import (
    association_test,
    chi_square_statistic,
    cramers_v,
)


class TestChiSquare:
    def test_independent_table_zero(self):
        # Perfectly proportional rows -> expected == observed -> chi2 = 0.
        table = np.array([[10.0, 20.0], [20.0, 40.0]])
        assert chi_square_statistic(table) == pytest.approx(0.0)

    def test_hand_computed(self):
        # 2x2 table [[10, 0], [0, 10]]: chi2 = n = 20.
        table = np.array([[10.0, 0.0], [0.0, 10.0]])
        assert chi_square_statistic(table) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            chi_square_statistic(np.array([[1.0, -1.0]]))
        with pytest.raises(ValueError, match="empty"):
            chi_square_statistic(np.zeros((2, 2)))


class TestCramersV:
    def test_perfect_association_is_one(self):
        table = np.diag([5.0, 7.0, 9.0])
        assert cramers_v(table) == pytest.approx(1.0)

    def test_independence_is_zero(self):
        table = np.array([[10.0, 20.0], [20.0, 40.0]])
        assert cramers_v(table) == pytest.approx(0.0)

    def test_single_row_is_zero(self):
        assert cramers_v(np.array([[3.0, 4.0]])) == 0.0


class TestAssociationTest:
    def test_dependent_labels_significant(self, rng):
        a = rng.integers(0, 3, size=300)
        b = (a + (rng.random(300) < 0.1)) % 3  # near-copy of a
        result = association_test(a, b, n_permutations=200, random_state=0)
        assert result.cramers_v > 0.7
        assert result.p_value < 0.01

    def test_independent_labels_not_significant(self, rng):
        a = rng.integers(0, 3, size=300)
        b = rng.integers(0, 4, size=300)
        result = association_test(a, b, n_permutations=200, random_state=0)
        assert result.cramers_v < 0.25
        assert result.p_value > 0.05

    def test_deterministic(self, rng):
        a = rng.integers(0, 3, size=100)
        b = rng.integers(0, 3, size=100)
        r1 = association_test(a, b, n_permutations=50, random_state=7)
        r2 = association_test(a, b, n_permutations=50, random_state=7)
        assert r1.p_value == r2.p_value

    def test_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            association_test([0, 1], [0, 1, 2])
        with pytest.raises(ValueError, match="n_permutations"):
            association_test([0, 1], [0, 1], n_permutations=0)

    def test_cluster_environment_association_is_strong(
        self, small_dataset, small_profile
    ):
        """Quantifies the paper's Figs. 6-8 claim: clusters and indoor
        environments are strongly associated."""
        envs = [e.value for e in small_dataset.environment_types()]
        result = association_test(
            small_profile.labels, np.asarray(envs),
            n_permutations=100, random_state=0,
        )
        assert result.cramers_v > 0.6
        assert result.p_value < 0.02
