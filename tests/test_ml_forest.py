"""Tests for the bagged random-forest classifier."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier


@pytest.fixture()
def data(rng):
    x = rng.uniform(-1, 1, size=(300, 5))
    y = np.where(x[:, 0] + 0.5 * x[:, 1] > 0, 1, 0)
    return x, y


class TestFit:
    def test_train_accuracy_high(self, data):
        x, y = data
        forest = RandomForestClassifier(n_estimators=20, random_state=0).fit(x, y)
        assert forest.score(x, y) > 0.97

    def test_generalizes(self, data, rng):
        x, y = data
        forest = RandomForestClassifier(n_estimators=30, random_state=0).fit(x, y)
        x_test = rng.uniform(-1, 1, size=(200, 5))
        y_test = np.where(x_test[:, 0] + 0.5 * x_test[:, 1] > 0, 1, 0)
        assert forest.score(x_test, y_test) > 0.9

    def test_n_estimators_respected(self, data):
        x, y = data
        forest = RandomForestClassifier(n_estimators=7, random_state=0).fit(x, y)
        assert len(forest.trees_) == 7

    def test_deterministic_given_seed(self, data):
        x, y = data
        a = RandomForestClassifier(n_estimators=5, random_state=3).fit(x, y)
        b = RandomForestClassifier(n_estimators=5, random_state=3).fit(x, y)
        np.testing.assert_allclose(a.predict_proba(x), b.predict_proba(x))

    def test_seed_changes_forest(self, data):
        x, y = data
        a = RandomForestClassifier(n_estimators=5, random_state=3).fit(x, y)
        b = RandomForestClassifier(n_estimators=5, random_state=4).fit(x, y)
        assert not np.allclose(a.predict_proba(x), b.predict_proba(x))

    def test_trees_differ(self, data):
        x, y = data
        forest = RandomForestClassifier(n_estimators=3, random_state=0).fit(x, y)
        t0, t1 = forest.trees_[0].tree_, forest.trees_[1].tree_
        assert (
            t0.n_nodes != t1.n_nodes
            or not np.array_equal(t0.threshold, t1.threshold)
        )

    def test_oob_score(self, data):
        x, y = data
        forest = RandomForestClassifier(n_estimators=30, random_state=0)
        forest.fit(x, y, compute_oob=True)
        assert forest.oob_score_ is not None
        assert forest.oob_score_ > 0.85

    def test_no_bootstrap(self, data):
        x, y = data
        forest = RandomForestClassifier(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(x, y)
        assert forest.score(x, y) > 0.97

    def test_missing_class_in_bootstrap_handled(self, rng):
        # A tiny minority class can vanish from bootstrap samples; the
        # forest must still emit probability columns for every class.
        x = rng.normal(size=(50, 3))
        y = np.zeros(50, dtype=int)
        y[:2] = 1
        y[2:4] = 2
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(x, y)
        proba = forest.predict_proba(x)
        assert proba.shape == (50, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)


class TestPredict:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RandomForestClassifier().predict(np.ones((1, 2)))

    def test_predict_labels_in_classes(self, data):
        x, y = data
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(x, y)
        assert set(forest.predict(x)) <= set(forest.classes_.tolist())

    def test_multiclass(self, rng):
        x = rng.uniform(-1, 1, size=(400, 4))
        y = (x[:, 0] > 0).astype(int) + 2 * (x[:, 1] > 0).astype(int)
        forest = RandomForestClassifier(n_estimators=25, random_state=0).fit(x, y)
        assert forest.score(x, y) > 0.95
        assert forest.predict_proba(x).shape == (400, 4)


class TestValidation:
    def test_bad_estimators(self):
        with pytest.raises(ValueError, match="n_estimators"):
            RandomForestClassifier(n_estimators=0)

    def test_label_mismatch(self, rng):
        with pytest.raises(ValueError, match="one label per row"):
            RandomForestClassifier(n_estimators=2).fit(
                rng.normal(size=(10, 2)), np.zeros(8)
            )
