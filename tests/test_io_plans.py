"""Tests for JSON export of profiles and operational plans."""

import json

import numpy as np
import pytest

from repro.apps import plan_energy, plan_slices
from repro.io.plans import (
    export_operations_json,
    load_operations_json,
    profile_to_dict,
    schedules_from_dict,
    schedules_to_dict,
    slices_from_dict,
    slices_to_dict,
)


@pytest.fixture(scope="module")
def plans(request):
    dataset = request.getfixturevalue("small_dataset")
    profile = request.getfixturevalue("small_profile")
    slices = plan_slices(dataset, profile, max_antennas=10)
    schedules = plan_energy(dataset, profile, max_antennas=10)
    return dataset, profile, slices, schedules


class TestProfileDict:
    def test_fields(self, plans):
        _, profile, _, _ = plans
        payload = profile_to_dict(profile)
        assert payload["n_clusters"] == 9
        assert len(payload["labels"]) == payload["n_antennas"]
        assert len(payload["service_names"]) == payload["n_services"]
        json.dumps(payload)  # must be JSON-serializable


class TestSliceRoundtrip:
    def test_roundtrip(self, plans):
        _, _, slices, _ = plans
        recovered = slices_from_dict(slices_to_dict(slices))
        assert sorted(recovered) == sorted(slices)
        for cluster, template in slices.items():
            assert recovered[cluster] == template

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="malformed slice"):
            slices_from_dict({"0": {"n_antennas": 5}})


class TestScheduleRoundtrip:
    def test_roundtrip(self, plans):
        _, _, _, schedules = plans
        recovered = schedules_from_dict(schedules_to_dict(schedules))
        for cluster, schedule in schedules.items():
            assert recovered[cluster] == schedule

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="malformed schedule"):
            schedules_from_dict({"0": {"energy_saving": 0.2}})


class TestBundle:
    def test_export_and_load(self, plans, tmp_path):
        _, profile, slices, schedules = plans
        path = tmp_path / "operations.json"
        export_operations_json(path, profile, slices, schedules)
        bundle = load_operations_json(path)
        assert bundle["profile"]["n_clusters"] == 9
        assert sorted(bundle["slices"]) == sorted(slices)
        assert bundle["energy"][3].energy_saving == pytest.approx(
            schedules[3].energy_saving
        )

    def test_missing_section_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"profile": {}}))
        with pytest.raises(ValueError, match="lacks"):
            load_operations_json(path)
