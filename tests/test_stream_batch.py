"""Tests for the hourly-batch record type and the replay stream sources."""

import csv

import numpy as np
import pytest

from repro.stream import (
    HourlyBatch,
    batch_from_rows,
    replay_dataset,
    replay_hourly_csv,
    replay_tensor,
)

HOUR = np.datetime64("2023-01-09T00", "h")
SERVICES = ("Netflix", "Spotify", "Waze")


def make_batch(hour=HOUR, ids=(0, 1), traffic=None, services=SERVICES):
    if traffic is None:
        traffic = np.arange(len(ids) * len(services), dtype=float).reshape(
            len(ids), len(services)
        )
    return HourlyBatch(
        hour=hour,
        antenna_ids=np.asarray(ids),
        traffic=np.asarray(traffic, dtype=float),
        service_names=tuple(services),
    )


class TestHourlyBatch:
    def test_basic_properties(self):
        batch = make_batch()
        assert batch.n_rows == 2
        assert batch.n_services == 3
        assert batch.total_mb() == pytest.approx(float(np.arange(6).sum()))
        assert batch.hour == HOUR

    def test_coerces_types(self):
        batch = batch_from_rows("2023-01-09T05", [3, 4],
                                [[1, 2, 3], [4, 5, 6]], list(SERVICES))
        assert batch.antenna_ids.dtype == np.int64
        assert batch.traffic.dtype == float
        assert batch.hour == np.datetime64("2023-01-09T05", "h")

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="unique"):
            make_batch(ids=(1, 1))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            make_batch(traffic=np.ones((3, 3)))

    def test_rejects_negative_traffic(self):
        with pytest.raises(ValueError, match="negative"):
            make_batch(traffic=-np.ones((2, 3)))

    def test_rejects_nan(self):
        traffic = np.ones((2, 3))
        traffic[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            make_batch(traffic=traffic)


class TestReplayTensor:
    def test_yields_per_hour_batches_in_order(self):
        rng = np.random.default_rng(0)
        tensor = rng.uniform(size=(4, 3, 5))
        hours = np.arange(HOUR, HOUR + np.timedelta64(5, "h"))
        batches = list(replay_tensor(tensor, hours, [10, 11, 12, 13], SERVICES))
        assert len(batches) == 5
        for t, batch in enumerate(batches):
            assert batch.hour == hours[t]
            np.testing.assert_array_equal(batch.traffic, tensor[:, :, t])
            np.testing.assert_array_equal(batch.antenna_ids, [10, 11, 12, 13])

    def test_rejects_unordered_hours(self):
        tensor = np.ones((2, 3, 2))
        hours = [HOUR, HOUR]  # not strictly increasing
        with pytest.raises(ValueError, match="strictly increasing"):
            list(replay_tensor(tensor, hours, [0, 1], SERVICES))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            list(replay_tensor(np.ones((2, 3, 4)), [HOUR], [0, 1], SERVICES))


class TestReplayDataset:
    def test_matches_hourly_synthesizer(self, small_dataset):
        window = slice(0, 6)
        ids = [0, 1, 2]
        services = ["Netflix", "Spotify"]
        batches = list(
            replay_dataset(small_dataset, window=window, antenna_ids=ids,
                           services=services)
        )
        assert len(batches) == 6
        expected = {
            s: small_dataset.hourly_service(s, antenna_ids=ids, window=window)
            for s in services
        }
        for t, batch in enumerate(batches):
            assert batch.hour == small_dataset.calendar.hours[t]
            assert batch.service_names == tuple(services)
            for j, service in enumerate(services):
                np.testing.assert_allclose(
                    batch.traffic[:, j], expected[service][:, t]
                )

    def test_defaults_cover_catalog(self, small_dataset):
        batches = replay_dataset(small_dataset, window=slice(0, 1))
        batch = next(iter(batches))
        assert batch.service_names == tuple(small_dataset.service_names)
        assert batch.n_rows == small_dataset.n_antennas


class TestReplayHourlyCsv:
    def test_streams_hour_chunks(self, tmp_path):
        path = tmp_path / "hourly.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["antenna_id", "service", "timestamp",
                             "traffic_mb"])
            writer.writerow([1, "Netflix", "2023-01-09T00", "5.0"])
            writer.writerow([0, "Spotify", "2023-01-09T00", "2.0"])
            writer.writerow([1, "Netflix", "2023-01-09T00", "1.5"])
            writer.writerow([0, "Netflix", "2023-01-09T01", "3.0"])
        batches = list(replay_hourly_csv(path, ["Netflix", "Spotify"]))
        assert [b.hour for b in batches] == [
            np.datetime64("2023-01-09T00", "h"),
            np.datetime64("2023-01-09T01", "h"),
        ]
        np.testing.assert_array_equal(batches[0].antenna_ids, [0, 1])
        np.testing.assert_allclose(
            batches[0].traffic, [[0.0, 2.0], [6.5, 0.0]]
        )
        np.testing.assert_allclose(batches[1].traffic, [[3.0, 0.0]])
