"""Tests for the from-scratch PCA (cross-checked against SVD)."""

import numpy as np
import pytest

from repro.core.pca import PCA


@pytest.fixture()
def anisotropic(rng):
    # Strongly anisotropic data: variance concentrated in two directions.
    basis = np.linalg.qr(rng.normal(size=(5, 5)))[0]
    scales = np.array([10.0, 4.0, 0.5, 0.1, 0.01])
    return rng.normal(size=(300, 5)) * scales @ basis.T + rng.normal(size=5)


class TestFit:
    def test_matches_svd(self, anisotropic):
        pca = PCA().fit(anisotropic)
        centered = anisotropic - anisotropic.mean(axis=0)
        _, singular, vt = np.linalg.svd(centered, full_matrices=False)
        svd_variance = singular ** 2 / (anisotropic.shape[0] - 1)
        np.testing.assert_allclose(
            pca.explained_variance_, svd_variance, rtol=1e-8
        )
        for i in range(5):
            dot = abs(float(pca.components_[i] @ vt[i]))
            assert dot == pytest.approx(1.0, abs=1e-8)

    def test_components_orthonormal(self, anisotropic):
        pca = PCA().fit(anisotropic)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(5), atol=1e-9)

    def test_variance_ratio_sums_to_one(self, anisotropic):
        pca = PCA().fit(anisotropic)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_variance_sorted_descending(self, anisotropic):
        pca = PCA().fit(anisotropic)
        assert np.all(np.diff(pca.explained_variance_) <= 1e-12)

    def test_n_components_truncates(self, anisotropic):
        pca = PCA(n_components=2).fit(anisotropic)
        assert pca.components_.shape == (2, 5)
        assert pca.variance_captured(2) > 0.95

    def test_deterministic_sign_convention(self, anisotropic):
        a = PCA(n_components=3).fit(anisotropic)
        b = PCA(n_components=3).fit(anisotropic)
        np.testing.assert_allclose(a.components_, b.components_)
        for i in range(3):
            j = int(np.argmax(np.abs(a.components_[i])))
            assert a.components_[i, j] > 0


class TestTransform:
    def test_roundtrip_full_rank(self, anisotropic):
        pca = PCA().fit(anisotropic)
        recovered = pca.inverse_transform(pca.transform(anisotropic))
        np.testing.assert_allclose(recovered, anisotropic, atol=1e-8)

    def test_projection_decorrelates(self, anisotropic):
        pca = PCA().fit(anisotropic)
        projected = pca.transform(anisotropic)
        covariance = np.cov(projected.T)
        off_diag = covariance - np.diag(np.diag(covariance))
        assert np.abs(off_diag).max() < 1e-8

    def test_truncated_reconstruction_error_bounded(self, anisotropic):
        pca = PCA(n_components=2).fit(anisotropic)
        recovered = pca.inverse_transform(pca.transform(anisotropic))
        residual_var = np.var(anisotropic - recovered, axis=0).sum()
        total_var = np.var(anisotropic - anisotropic.mean(axis=0),
                           axis=0).sum()
        assert residual_var / total_var < 0.05

    def test_feature_count_checked(self, anisotropic):
        pca = PCA().fit(anisotropic)
        with pytest.raises(ValueError, match="columns"):
            pca.transform(np.ones((2, 7)))


class TestOnRsca:
    def test_groups_separate_in_leading_components(self, small_profile):
        """The dendrogram groups are visible in a few PCA directions."""
        pca = PCA(n_components=5).fit(small_profile.features)
        projected = pca.transform(small_profile.features)
        groups = small_profile.groups(3)
        group_of = np.array([groups[int(l)] for l in small_profile.labels])
        centroids = np.vstack([
            projected[group_of == g].mean(axis=0) for g in sorted(set(groups.values()))
        ])
        # Group centroids are well separated relative to within-group spread.
        spread = projected.std(axis=0).mean()
        min_dist = min(
            np.linalg.norm(centroids[a] - centroids[b])
            for a in range(3) for b in range(a + 1, 3)
        )
        assert min_dist > spread

    def test_variance_concentrated(self, small_profile):
        pca = PCA().fit(small_profile.features)
        assert pca.variance_captured(10) > 0.5


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError, match="n_components"):
            PCA(n_components=0)

    def test_too_many_components(self, rng):
        with pytest.raises(ValueError, match="exceeds"):
            PCA(n_components=10).fit(rng.normal(size=(20, 3)))

    def test_needs_two_samples(self):
        with pytest.raises(ValueError, match="two samples"):
            PCA().fit(np.ones((1, 3)))

    def test_unfitted(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            PCA().transform(np.ones((2, 2)))
