"""Seeded end-to-end SLO test: fault storm → fast burn → alert cycle.

Drives a real :class:`ProfileService` (seeded frozen profile, shared
process registry, tracing on) through a deterministic error storm and
asserts the full observable chain: the availability SLO enters fast
burn, its alert walks pending → firing → resolved on a synthetic
clock with the same transitions every run, and the firing alert's
exemplar trace id resolves to a span actually recorded in the
:class:`TraceStore`.
"""

import threading

import pytest

from repro.obs.alerts import AlertManager, default_rules
from repro.obs.registry import MetricsRegistry, set_registry
from repro.obs.slo import SLOEngine, default_slos
from repro.obs.trace import disable_tracing, enable_tracing, span
from repro.serve import ProfileService, ServeMetrics, make_server
from tests.conftest import build_frozen_profile


@pytest.fixture()
def stack():
    """Service + SLO engine + alert manager on one fresh registry.

    The engine and manager run on a synthetic clock (``clock["t"]``) so
    implicit evaluations — scrape-triggered refreshes, health probes —
    stay on the same timeline as the tests' explicit ``now`` ticks.
    """
    registry = MetricsRegistry()
    previous = set_registry(registry)
    store = enable_tracing(capacity=4096, clear=True)
    frozen, _ = build_frozen_profile(seed=0)
    service = ProfileService(
        frozen, max_batch=16, n_workers=2,
        metrics=ServeMetrics(registry=registry),
    )
    clock = {"t": 0.0}
    engine = SLOEngine(
        default_slos(registry, window_s=60.0), registry=registry,
        clock=lambda: clock["t"],
    )
    manager = AlertManager(
        engine, default_rules(engine, time_scale=1.0 / 60.0),
        registry=registry, clock=lambda: clock["t"],
    )
    try:
        yield frozen, service, engine, manager, store, clock
    finally:
        service.close()
        disable_tracing()
        store.clear()
        set_registry(previous)


class TestFaultStormAlertCycle:
    def test_pending_firing_resolved_with_resolvable_exemplar(self, stack):
        frozen, service, engine, manager, store, clock = stack
        alert = manager.get("serve-availability-fast-burn")

        # Clean baseline.
        with span("e2e.classify", phase="baseline"):
            service.classify(frozen.features[:4], timeout=30.0)
        engine.tick(now=0.0)
        manager.evaluate(now=0.0)
        assert alert.state == "inactive"

        # Storm: real traffic (feeding the latency histogram exemplars)
        # plus a deterministic burst of server-side errors.  Errors stay
        # below total requests so the clamped good-event source keeps
        # tracking request deltas through the recovery window.
        for call in range(4):
            with span("e2e.classify", phase="storm", call=call):
                service.classify(frozen.features[:4], timeout=30.0)
        for _ in range(3):
            service.metrics.incr("errors")
        engine.tick(now=2.0)
        changed = manager.evaluate(now=2.0)
        assert alert.state == "pending"
        assert alert in changed

        engine.tick(now=4.0)
        changed = manager.evaluate(now=4.0)
        assert alert.state == "firing"
        assert alert in changed
        assert alert.fired_count == 1
        assert alert.burn_long > alert.rule.burn_threshold
        assert alert.burn_short > alert.rule.burn_threshold

        # The firing alert's exemplar is a real recorded span.
        assert alert.exemplar_trace_id is not None
        trace_ids = {record.trace_id for record in store.spans()}
        assert alert.exemplar_trace_id in trace_ids

        # Recovery: clean traffic only, far enough out that both burn
        # windows (60s/5s scaled) anchor past the storm.
        for call in range(8):
            with span("e2e.classify", phase="recovery", call=call):
                service.classify(frozen.features[4:8], timeout=30.0)
        engine.tick(now=90.0)
        changed = manager.evaluate(now=90.0)
        assert alert.state == "resolved"
        assert alert in changed

    def test_transitions_are_seed_deterministic(self, stack):
        """Two identical storms produce identical transition journals."""
        frozen, service, engine, manager, store, clock = stack

        def run_storm():
            journal = []
            engine.tick(now=0.0)
            manager.evaluate(now=0.0)
            for _ in range(40):
                service.metrics.incr("errors")
            with span("e2e.classify"):
                service.classify(frozen.features[:4], timeout=30.0)
            for t in (2.0, 4.0):
                engine.tick(now=t)
                for alert in manager.evaluate(now=t):
                    # Other SLOs (latency, shed) depend on wall-clock
                    # timing; the availability pair is the seeded part.
                    if alert.rule.slo == "serve-availability":
                        journal.append((t, alert.rule.name, alert.state))
            return journal

        journal = run_storm()
        expected = [
            (2.0, "serve-availability-fast-burn", "pending"),
            (2.0, "serve-availability-slow-burn", "pending"),
            (4.0, "serve-availability-fast-burn", "firing"),
            (4.0, "serve-availability-slow-burn", "firing"),
        ]
        assert journal == expected

    def test_http_surfaces_reflect_the_incident(self, stack):
        """/healthz stays ready and /slo reports the burn during a storm."""
        import json
        import urllib.request

        frozen, service, engine, manager, store, clock = stack
        server = make_server(service, port=0, slo_engine=engine,
                             alert_manager=manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            engine.tick(now=0.0)
            manager.evaluate(now=0.0)
            for _ in range(40):
                service.metrics.incr("errors")
            with span("e2e.classify"):
                service.classify(frozen.features[:4], timeout=30.0)
            engine.tick(now=2.0)
            manager.evaluate(now=2.0)
            engine.tick(now=4.0)
            manager.evaluate(now=4.0)
            # Scrape-triggered refreshes evaluate at the synthetic now.
            clock["t"] = 4.0

            with urllib.request.urlopen(f"{base}/slo",
                                        timeout=10.0) as response:
                body = json.loads(response.read())
            by_name = {a["name"]: a for a in body["alerts"]}
            fast = by_name["serve-availability-fast-burn"]
            assert fast["state"] == "firing"
            assert fast["exemplar_trace_id"] is not None
            budgets = {s["name"]: s for s in body["slos"]}
            assert budgets["serve-availability"][
                "error_budget_remaining"] < 0.0

            # Overspent budgets degrade /healthz but do not fail it.
            with urllib.request.urlopen(f"{base}/healthz",
                                        timeout=10.0) as response:
                health = json.loads(response.read())
            assert response.status == 200
            assert health["status"] == "ok"
            budget_check = next(
                c for c in health["checks"] if c["name"] == "error_budget"
            )
            assert budget_check["ok"] is False
        finally:
            server.shutdown()
            server.server_close()
            thread.join(5.0)
