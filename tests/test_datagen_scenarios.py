"""Tests for the named deployment scenarios."""

import pytest

from repro.datagen.environments import EnvironmentType, TOTAL_INDOOR_ANTENNAS
from repro.datagen.scenarios import (
    SCENARIOS,
    available_scenarios,
    scaled_specs,
    scenario,
)


class TestScaledSpecs:
    def test_scaling(self):
        specs = scaled_specs(0.1)
        metro = next(s for s in specs if s.env_type == EnvironmentType.METRO)
        assert metro.count == 179

    def test_minimum_floor(self):
        specs = scaled_specs(0.01, minimum_per_environment=6)
        hotel = next(s for s in specs if s.env_type == EnvironmentType.HOTEL)
        assert hotel.count == 6

    def test_all_environments_present(self):
        specs = scaled_specs(0.05)
        assert {s.env_type for s in specs} == set(EnvironmentType)

    def test_validation(self):
        with pytest.raises(ValueError, match="scale"):
            scaled_specs(0.0)
        with pytest.raises(ValueError, match="minimum_per_environment"):
            scaled_specs(0.1, minimum_per_environment=0)


class TestScenario:
    def test_available(self):
        listing = available_scenarios()
        assert set(listing) == set(SCENARIOS)
        assert all(isinstance(desc, str) for desc in listing.values())

    def test_tiny_scenario_generates(self):
        dataset = scenario("tiny", master_seed=3)
        assert dataset.n_services == 73
        assert 200 < dataset.n_antennas < 400

    def test_enterprise_scenario_composition(self):
        dataset = scenario("enterprise", master_seed=3)
        envs = set(dataset.environment_types())
        assert EnvironmentType.WORKSPACE in envs
        assert EnvironmentType.METRO not in envs

    def test_transit_scenario_composition(self):
        dataset = scenario("transit", master_seed=3)
        envs = dataset.environment_types()
        metro_share = sum(
            1 for e in envs if e == EnvironmentType.METRO
        ) / len(envs)
        assert metro_share > 0.5

    def test_kwargs_forwarded(self):
        quiet = scenario("tiny", master_seed=3, share_noise_sigma=0.0)
        assert quiet.model.share_noise_sigma == 0.0

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario("mars-colony")

    def test_seed_changes_data(self):
        a = scenario("tiny", master_seed=1)
        b = scenario("tiny", master_seed=2)
        assert not (a.totals == b.totals).all()
