"""Tests for the dataset statistical validation checks."""

import numpy as np
import pytest

from repro.datagen.validate import (
    CheckResult,
    check_diurnality,
    check_environment_counts,
    check_heavy_tail,
    check_totals_positive,
    check_volume_heterogeneity,
    validate_dataset,
    validation_report,
)
from tests.conftest import scaled_specs


def scaled_expected():
    from repro.datagen.environments import DEFAULT_SPECS

    return {
        spec.env_type: max(6, int(round(spec.count * 0.1)))
        for spec in DEFAULT_SPECS
    }


class TestIndividualChecks:
    def test_environment_counts_pass(self, small_dataset):
        result = check_environment_counts(small_dataset, scaled_expected())
        assert result.passed, result.detail

    def test_environment_counts_fail_on_wrong_expectation(self, small_dataset):
        from repro.datagen.environments import EnvironmentType

        wrong = dict(scaled_expected())
        wrong[EnvironmentType.METRO] += 5
        result = check_environment_counts(small_dataset, wrong)
        assert not result.passed
        assert "metro" in result.detail

    def test_heavy_tail_pass(self, small_dataset):
        assert check_heavy_tail(small_dataset).passed

    def test_volume_heterogeneity_pass(self, small_dataset):
        assert check_volume_heterogeneity(small_dataset).passed

    def test_diurnality_pass(self, small_dataset):
        assert check_diurnality(small_dataset).passed

    def test_totals_positive_pass(self, small_dataset):
        assert check_totals_positive(small_dataset).passed

    def test_heavy_tail_threshold_adjustable(self, small_dataset):
        result = check_heavy_tail(small_dataset, top_share=0.999)
        assert not result.passed


class TestReport:
    def test_validate_dataset_all_pass(self, small_dataset):
        results = validate_dataset(small_dataset, scaled_expected())
        assert all(result.passed for result in results), [
            result.detail for result in results if not result.passed
        ]

    def test_report_format(self, small_dataset):
        results = validate_dataset(small_dataset, scaled_expected())
        report = validation_report(results)
        assert "PASS" in report
        assert f"{len(results)}/{len(results)} checks passed" in report

    def test_check_result_str(self):
        result = CheckResult("demo", False, "something off")
        assert str(result) == "[FAIL] demo: something off"
