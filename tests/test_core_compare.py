"""Tests for partition-agreement metrics and the k-means baseline."""

import numpy as np
import pytest

from repro.core.compare import (
    KMeans,
    adjusted_rand_index,
    cluster_purity,
    normalized_mutual_information,
)


class TestAdjustedRandIndex:
    def test_identical_is_one(self):
        labels = [0, 0, 1, 1, 2, 2]
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_permutation_invariant(self):
        a = [0, 0, 1, 1, 2, 2]
        b = [2, 2, 0, 0, 1, 1]
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_near_zero(self, rng):
        a = rng.integers(0, 4, size=2000)
        b = rng.integers(0, 4, size=2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_partial_agreement_between(self, rng):
        a = np.repeat([0, 1], 50)
        b = a.copy()
        flip = rng.choice(100, size=20, replace=False)
        b[flip] = 1 - b[flip]
        value = adjusted_rand_index(a, b)
        assert 0.1 < value < 0.9

    def test_hand_computed_zero_case(self):
        # sum_cells=1, rows=2, cols=3, total=6 -> expected=1, max=2.5,
        # ARI = (1-1)/(2.5-1) = 0.
        value = adjusted_rand_index([0, 0, 1, 1], [0, 0, 0, 1])
        assert value == pytest.approx(0.0, abs=1e-12)

    def test_hand_computed_partial(self):
        # a=[0,0,1,1,1], b=[0,0,1,1,2]: cells=2, rows=4, cols=2,
        # total=10 -> expected=0.8, max=3, ARI = 1.2/2.2.
        value = adjusted_rand_index([0, 0, 1, 1, 1], [0, 0, 1, 1, 2])
        assert value == pytest.approx(1.2 / 2.2, abs=1e-9)

    def test_single_cluster_each(self):
        assert adjusted_rand_index([0, 0], [1, 1]) == pytest.approx(1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            adjusted_rand_index([0, 1], [0, 1, 2])
        with pytest.raises(ValueError, match="non-empty"):
            adjusted_rand_index([], [])


class TestNMI:
    def test_identical_is_one(self):
        labels = [0, 1, 1, 2, 2, 2]
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_permutation_invariant(self):
        a = [0, 0, 1, 1]
        b = [1, 1, 0, 0]
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_near_zero(self, rng):
        a = rng.integers(0, 3, size=3000)
        b = rng.integers(0, 3, size=3000)
        assert normalized_mutual_information(a, b) < 0.01

    def test_bounds(self, rng):
        a = rng.integers(0, 5, size=200)
        b = rng.integers(0, 3, size=200)
        value = normalized_mutual_information(a, b)
        assert -1e-9 <= value <= 1.0 + 1e-9

    def test_refinement_less_than_one(self):
        coarse = [0, 0, 0, 0, 1, 1, 1, 1]
        fine = [0, 0, 1, 1, 2, 2, 3, 3]
        value = normalized_mutual_information(fine, coarse)
        assert 0.5 < value < 1.0


class TestPurity:
    def test_perfect(self):
        assert cluster_purity([0, 0, 1, 1], [5, 5, 9, 9]) == 1.0

    def test_mixed(self):
        # Cluster 0 = {a, a, b}: majority 2/3; cluster 1 = {b}: 1/1.
        assert cluster_purity([0, 0, 0, 1], ["a", "a", "b", "b"]) == 0.75

    def test_all_one_cluster(self):
        assert cluster_purity([0, 0, 0, 0], [0, 0, 1, 1]) == 0.5


class TestKMeans:
    @pytest.fixture()
    def blobs(self, rng):
        centers = np.array([[0, 0], [12, 0], [0, 12], [12, 12]], dtype=float)
        x = np.vstack([
            c + rng.normal(scale=0.5, size=(25, 2)) for c in centers
        ])
        truth = np.repeat(np.arange(4), 25)
        return x, truth

    def test_recovers_blobs(self, blobs):
        x, truth = blobs
        labels = KMeans(n_clusters=4, random_state=0).fit_predict(x)
        assert adjusted_rand_index(labels, truth) == pytest.approx(1.0)

    def test_inertia_decreases_with_k(self, blobs):
        x, _ = blobs
        inertias = []
        for k in (2, 4, 8):
            model = KMeans(n_clusters=k, random_state=0).fit(x)
            inertias.append(model.inertia_)
        assert inertias[0] > inertias[1] > inertias[2]

    def test_deterministic(self, blobs):
        x, _ = blobs
        a = KMeans(n_clusters=4, random_state=1).fit_predict(x)
        b = KMeans(n_clusters=4, random_state=1).fit_predict(x)
        np.testing.assert_array_equal(a, b)

    def test_predict_new_points(self, blobs):
        x, truth = blobs
        model = KMeans(n_clusters=4, random_state=0).fit(x)
        assigned = model.predict(x[:10])
        np.testing.assert_array_equal(assigned, model.labels_[:10])

    def test_predict_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            KMeans().predict(np.ones((2, 2)))

    def test_more_clusters_than_samples_rejected(self):
        with pytest.raises(ValueError, match="at least as many samples"):
            KMeans(n_clusters=5).fit(np.ones((3, 2)))

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="n_clusters"):
            KMeans(n_clusters=0)
        with pytest.raises(ValueError, match="n_init"):
            KMeans(n_init=0)
        with pytest.raises(ValueError, match="max_iter"):
            KMeans(max_iter=0)

    def test_duplicate_points(self):
        x = np.array([[0.0, 0.0]] * 10 + [[5.0, 5.0]] * 10)
        labels = KMeans(n_clusters=2, random_state=0).fit_predict(x)
        assert len(set(labels[:10].tolist())) == 1
        assert labels[0] != labels[10]
