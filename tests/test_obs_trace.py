"""Tests for tracing: nesting, exception safety, ring buffer, export."""

import json
import threading

import pytest

from repro.obs.trace import (
    TraceStore,
    current_span,
    current_span_id,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    get_trace_store,
    span,
    tracing_enabled,
)


@pytest.fixture()
def traced():
    """Enable tracing with a fresh store; always disable afterwards."""
    store = enable_tracing(capacity=256)
    try:
        yield store
    finally:
        disable_tracing()
        store.clear()


class TestSpanBasics:
    def test_disabled_span_is_noop(self):
        disable_tracing()
        before = len(get_trace_store())
        with span("nothing") as record:
            assert record is None
        assert len(get_trace_store()) == before
        assert not tracing_enabled()

    def test_span_records_name_duration_attributes(self, traced):
        with span("stage.one", rows=7):
            pass
        [record] = traced.spans()
        assert record.name == "stage.one"
        assert record.attributes == {"rows": 7}
        assert record.duration_s >= 0.0
        assert record.error is False

    def test_nesting_builds_parent_links(self, traced):
        with span("root") as root:
            with span("child") as child:
                with span("grandchild") as grandchild:
                    assert grandchild.parent_id == child.span_id
                assert current_span() is child
            assert child.parent_id == root.span_id
        assert root.parent_id is None
        # All three share one trace id.
        trace_ids = {s.trace_id for s in traced.spans()}
        assert trace_ids == {root.trace_id}

    def test_siblings_get_distinct_span_ids(self, traced):
        with span("root"):
            with span("a") as a:
                pass
            with span("b") as b:
                pass
        assert a.span_id != b.span_id
        assert a.parent_id == b.parent_id

    def test_correlation_helpers(self, traced):
        assert current_trace_id() is None
        assert current_span_id() is None
        with span("outer") as outer:
            assert current_trace_id() == outer.trace_id
            assert current_span_id() == outer.span_id
        assert current_trace_id() is None


class TestExceptionSafety:
    def test_raising_span_still_closes_with_error_attribute(self, traced):
        with pytest.raises(ValueError, match="boom"):
            with span("fails"):
                raise ValueError("boom")
        [record] = traced.spans()
        assert record.error is True
        assert record.attributes["error"] is True
        assert record.attributes["error_type"] == "ValueError"
        assert record.duration_s >= 0.0
        # The stack unwound: a new span is a root again.
        with span("after") as after:
            assert after.parent_id is None

    def test_exception_in_nested_span_unwinds_both(self, traced):
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("nested boom")
        by_name = {s.name: s for s in traced.spans()}
        assert by_name["inner"].error is True
        assert by_name["outer"].error is True
        assert current_span() is None


class TestTraceStore:
    def test_ring_buffer_drops_oldest(self):
        store = TraceStore(capacity=3)
        enable_tracing()
        try:
            old_store = get_trace_store()
            for index in range(5):
                with span(f"s{index}"):
                    pass
            # Use a private store directly to test the ring semantics.
            for index in range(5):
                record = old_store.spans()[-1]
                store.add(record)
        finally:
            disable_tracing()
            old_store.clear()
        assert len(store) == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)

    def test_enable_with_capacity_replaces_store(self):
        first = enable_tracing(capacity=16)
        second = enable_tracing(capacity=16)
        try:
            assert second is get_trace_store()
            assert second is not first
        finally:
            disable_tracing()
            second.clear()

    def test_clear_empties_store(self, traced):
        with span("x"):
            pass
        assert len(traced) == 1
        traced.clear()
        assert traced.spans() == []


class TestChromeExport:
    def test_export_is_chrome_loadable_json(self, traced, tmp_path):
        with span("root", rows=3):
            with span("child"):
                pass
        path = tmp_path / "trace.json"
        n_events = traced.export_chrome(path)
        assert n_events == 2
        trace = json.loads(path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid", "args"}
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        child = next(e for e in events if e["name"] == "child")
        root = next(e for e in events if e["name"] == "root")
        assert child["args"]["parent_id"] == root["args"]["span_id"]
        assert root["args"]["rows"] == 3

    def test_error_span_exported_with_error_category(self, traced, tmp_path):
        with pytest.raises(ValueError):
            with span("bad"):
                raise ValueError("x")
        event = traced.to_chrome()["traceEvents"][0]
        assert "error" in event["cat"]
        assert event["args"]["error_type"] == "ValueError"


class TestThreading:
    def test_spans_on_different_threads_are_independent_roots(self, traced):
        results = {}

        def worker(key):
            with span(f"thread.{key}") as record:
                results[key] = record

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in ("a", "b")
        ]
        with span("main.root"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # Worker spans never see the main thread's stack.
        assert results["a"].parent_id is None
        assert results["b"].parent_id is None
        assert results["a"].trace_id != results["b"].trace_id
