"""Tests for archetype profiles and environment-conditioned assignment."""

import numpy as np
import pytest

from repro.datagen.archetypes import (
    Archetype,
    ArchetypeProfile,
    AssignmentRule,
    DEFAULT_ASSIGNMENT,
    DEFAULT_PROFILES,
    GREEN_GROUP,
    GROUP_OF,
    ORANGE_GROUP,
    RED_GROUP,
    assign_archetype,
    default_profiles,
)
from repro.datagen.environments import EnvironmentType
from repro.datagen.services import ServiceCategory, default_catalog


class TestGroups:
    def test_nine_archetypes_numbered_like_paper(self):
        assert sorted(int(a) for a in Archetype) == list(range(9))

    def test_paper_group_membership(self):
        assert {int(a) for a in ORANGE_GROUP} == {0, 4, 7}
        assert {int(a) for a in GREEN_GROUP} == {5, 6, 8}
        assert {int(a) for a in RED_GROUP} == {1, 2, 3}

    def test_group_of_covers_all(self):
        assert set(GROUP_OF) == set(Archetype)
        assert set(GROUP_OF.values()) == {"orange", "green", "red"}


class TestProfiles:
    def test_all_archetypes_have_profiles(self):
        assert set(DEFAULT_PROFILES) == set(Archetype)

    def test_service_weights_are_distribution(self):
        catalog = default_catalog()
        for profile in DEFAULT_PROFILES.values():
            weights = profile.service_weights(catalog)
            assert weights.shape == (73,)
            assert weights.sum() == pytest.approx(1.0)
            assert np.all(weights > 0)

    def test_commuter_over_uses_music(self):
        catalog = default_catalog()
        popularity = catalog.popularity_weights()
        weights = DEFAULT_PROFILES[
            Archetype.PARIS_COMMUTER_ENTERTAINMENT
        ].service_weights(catalog)
        spotify = catalog.index_of("Spotify")
        # The commuter's Spotify share must exceed the global share.
        assert weights[spotify] > popularity[spotify]

    def test_office_over_uses_teams_under_uses_music(self):
        catalog = default_catalog()
        popularity = catalog.popularity_weights()
        weights = DEFAULT_PROFILES[Archetype.OFFICE].service_weights(catalog)
        teams = catalog.index_of("Microsoft Teams")
        spotify = catalog.index_of("Spotify")
        assert weights[teams] > popularity[teams]
        assert weights[spotify] < popularity[spotify]

    def test_provincial_commuter_under_uses_mappy(self):
        catalog = default_catalog()
        popularity = catalog.popularity_weights()
        weights = DEFAULT_PROFILES[
            Archetype.PROVINCIAL_COMMUTER
        ].service_weights(catalog)
        mappy = catalog.index_of("Mappy")
        assert weights[mappy] < popularity[mappy]

    def test_stadiums_differ_on_giphy(self):
        # Section 5.1.2: Giphy present in cluster 8, absent in cluster 6.
        catalog = default_catalog()
        giphy = catalog.index_of("Giphy")
        w6 = DEFAULT_PROFILES[Archetype.PROVINCIAL_STADIUM].service_weights(catalog)
        w8 = DEFAULT_PROFILES[Archetype.PARIS_STADIUM].service_weights(catalog)
        assert w8[giphy] > 5 * w6[giphy]

    def test_uniform_flattens_popularity(self):
        catalog = default_catalog()
        popularity = catalog.popularity_weights()
        weights = DEFAULT_PROFILES[Archetype.UNIFORM_MODERATE].service_weights(catalog)
        # Flattening compresses the dynamic range of shares.
        assert weights.max() / weights.min() < popularity.max() / popularity.min()

    def test_flatten_bounds_validated(self):
        with pytest.raises(ValueError, match="flatten"):
            ArchetypeProfile(Archetype.GENERAL_USE, flatten=1.5)

    def test_nonpositive_multiplier_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ArchetypeProfile(
                Archetype.GENERAL_USE,
                category_multipliers={ServiceCategory.MUSIC: 0.0},
            )
        with pytest.raises(ValueError, match="positive"):
            ArchetypeProfile(
                Archetype.GENERAL_USE, service_multipliers={"Waze": -1.0}
            )

    def test_default_profiles_returns_copy(self):
        copy = default_profiles()
        copy[Archetype.OFFICE] = None
        assert DEFAULT_PROFILES[Archetype.OFFICE] is not None


class TestAssignment:
    def test_rules_cover_all_env_city_pairs(self):
        for env in EnvironmentType:
            for is_paris in (True, False):
                assert (env, is_paris) in DEFAULT_ASSIGNMENT, (env, is_paris)

    def test_rule_weights_sum_to_one(self):
        for rule in DEFAULT_ASSIGNMENT.values():
            assert sum(rule.weights.values()) == pytest.approx(1.0)

    def test_paris_metro_only_commuter_archetypes(self):
        rule = DEFAULT_ASSIGNMENT[(EnvironmentType.METRO, True)]
        assert set(rule.weights) <= set(ORANGE_GROUP)

    def test_non_paris_metro_is_cluster7(self):
        rule = DEFAULT_ASSIGNMENT[(EnvironmentType.METRO, False)]
        assert rule.weights == {Archetype.PROVINCIAL_COMMUTER: 1.0}

    def test_trains_are_orange_only(self):
        # Fig. 7a: the orange group comprises solely metro and train
        # stations, so train antennas must all draw orange archetypes.
        for is_paris in (True, False):
            rule = DEFAULT_ASSIGNMENT[(EnvironmentType.TRAIN, is_paris)]
            assert set(rule.weights) <= set(ORANGE_GROUP)

    def test_airports_tunnels_mostly_general(self):
        for env in (EnvironmentType.AIRPORT, EnvironmentType.TUNNEL):
            rule = DEFAULT_ASSIGNMENT[(env, True)]
            assert rule.weights.get(Archetype.GENERAL_USE, 0) > 0.9

    def test_workspaces_mostly_office(self):
        rule = DEFAULT_ASSIGNMENT[(EnvironmentType.WORKSPACE, True)]
        assert rule.weights.get(Archetype.OFFICE, 0) > 0.7

    def test_sampling_respects_support(self, rng):
        rule = DEFAULT_ASSIGNMENT[(EnvironmentType.METRO, True)]
        draws = {assign_archetype(EnvironmentType.METRO, True, rng) for _ in range(50)}
        assert draws <= set(rule.weights)

    def test_sampling_deterministic_given_rng(self):
        a = assign_archetype(
            EnvironmentType.STADIUM, False, np.random.default_rng(5)
        )
        b = assign_archetype(
            EnvironmentType.STADIUM, False, np.random.default_rng(5)
        )
        assert a == b

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="no assignment rule"):
            assign_archetype(
                EnvironmentType.METRO, True, np.random.default_rng(0), assignment={}
            )

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            AssignmentRule({Archetype.OFFICE: 0.5})
