"""End-to-end observability acceptance tests: trace propagation across
the HTTP boundary, profiling a busy MicroBatcher, and ``/query`` rates
that match hand-computed counter deltas."""

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.obs.prof import ContinuousProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import disable_tracing, enable_tracing
from repro.obs.tsdb import MetricsTSDB
from repro.serve import HttpServeClient, ProfileService, make_server
from tests.conftest import build_frozen_profile


@pytest.fixture(scope="module")
def frozen_and_totals():
    return build_frozen_profile()


@pytest.fixture()
def traced():
    store = enable_tracing(capacity=512)
    try:
        yield store
    finally:
        disable_tracing()
        store.clear()


@pytest.fixture()
def live_server(frozen_and_totals):
    """Serve node with a TSDB and profiler attached, plus its service."""
    frozen, _ = frozen_and_totals
    service = ProfileService(frozen, max_batch=16, n_workers=2)
    tsdb = MetricsTSDB(service.metrics.registry, min_interval_s=0.05)
    profiler = ContinuousProfiler(hz=100.0, registry=MetricsRegistry())
    server = make_server(service, port=0, profiler=profiler, tsdb=tsdb)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", frozen, service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(5.0)


def _get(base_url, path):
    try:
        with urllib.request.urlopen(f"{base_url}{path}", timeout=10.0) as r:
            return r.status, json.loads(r.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


class TestTracePropagation:
    def test_server_span_joins_client_trace(self, traced, live_server):
        base_url, frozen, _ = live_server
        client = HttpServeClient(base_url)
        client.classify(frozen.features[:3])

        client_spans = [
            s for s in traced.spans() if s.name == "client.request"
        ]
        assert client_spans, "client did not record a span"
        origin = client_spans[0]
        # The server records its span on handler exit, which can land a
        # hair after the client finishes reading the response body.
        deadline = time.monotonic() + 2.0
        server_spans = []
        while not server_spans and time.monotonic() < deadline:
            server_spans = [
                s for s in traced.spans()
                if s.name == "serve.http" and s.trace_id == origin.trace_id
            ]
            if not server_spans:
                time.sleep(0.01)
        spans = traced.spans()
        assert server_spans, (
            "server span did not join the client's trace; "
            f"server traces: {[s.trace_id for s in spans if s.name == 'serve.http']}"
        )
        assert server_spans[0].parent_id == origin.span_id

    def test_untraced_request_starts_fresh_trace(self, traced, live_server):
        base_url, _, _ = live_server
        # A raw request without a traceparent header still gets a span,
        # rooted in its own new trace.
        status, _ = _get(base_url, "/healthz")
        assert status == 200
        # The span is recorded on handler exit, which can land a hair
        # after the client finishes reading the response body.
        deadline = time.monotonic() + 2.0
        roots = []
        while not roots and time.monotonic() < deadline:
            roots = [
                s for s in traced.spans()
                if s.name == "serve.http" and s.parent_id is None
            ]
            if not roots:
                time.sleep(0.01)
        assert roots


class TestProfilerHotPath:
    def test_busy_microbatcher_speedscope_contains_vote(
            self, live_server, tmp_path):
        _, frozen, service = live_server
        profiler = ContinuousProfiler(hz=100.0, window_s=30.0,
                                      registry=MetricsRegistry())
        stop = threading.Event()

        def hammer():
            i = 0
            while not stop.is_set():
                # Scale the vectors slightly each round so the result
                # cache never absorbs the work we want to profile.
                i += 1
                vectors = frozen.features[:32] * (1.0 + 1e-9 * i)
                service.classify(vectors)

        drivers = [
            threading.Thread(target=hammer, daemon=True) for _ in range(2)
        ]
        for driver in drivers:
            driver.start()
        try:
            deadline = time.monotonic() + 20.0
            found = False
            while time.monotonic() < deadline and not found:
                for _ in range(50):
                    profiler.sample_once(now=0.0)
                found = any(
                    "vote" in stack for stack in profiler.collapsed()
                )
        finally:
            stop.set()
            for driver in drivers:
                driver.join(timeout=5.0)
        assert found, (
            "vote hot path never sampled; stacks: "
            f"{list(profiler.collapsed())[:10]}"
        )
        path = tmp_path / "batcher.speedscope.json"
        assert profiler.export_speedscope(path) > 0
        document = json.loads(path.read_text())
        assert "vote" in json.dumps(document["shared"]["frames"])


class TestQueryEndpoint:
    def test_rate_matches_hand_computed_counter_deltas(self, live_server):
        base_url, frozen, _ = live_server
        client = HttpServeClient(base_url)
        expr = "rate(repro_serve_requests_total[60s])"

        client.classify(frozen.features[:2])
        client.metrics()  # scrape → first TSDB sample
        time.sleep(0.2)
        client.classify(frozen.features[2:5])
        client.classify(frozen.features[5:7])
        time.sleep(0.1)
        status, payload = _get(
            base_url, f"/query?expr={urllib.parse.quote(expr)}"
        )
        assert status == 200
        assert payload["fn"] == "rate"
        samples = payload["series"][0]["samples"]
        assert len(samples) >= 2
        increase = sum(
            max(0.0, v1 - v0)
            for (_, v0), (_, v1) in zip(samples, samples[1:])
        )
        elapsed = samples[-1][0] - samples[0][0]
        assert payload["value"] == pytest.approx(increase / elapsed)
        assert payload["value"] > 0.0
        # The window really did absorb the classify calls made between
        # the two scrapes.
        assert increase >= 2.0

    def test_query_missing_expr_and_unknown_series(self, live_server):
        base_url, _, _ = live_server
        status, payload = _get(base_url, "/query")
        assert status == 400
        assert "expr" in payload["error"]
        status, payload = _get(base_url, "/query?expr=no_such_series")
        assert status == 400
        assert "no recorded series" in payload["error"]

    def test_query_bad_range(self, live_server):
        base_url, _, _ = live_server
        status, payload = _get(
            base_url, "/query?expr=repro_serve_requests_total&range=banana"
        )
        assert status == 400


class TestDebugProfEndpoint:
    def test_speedscope_and_collapsed_formats(self, live_server):
        base_url, frozen, _ = live_server
        HttpServeClient(base_url).classify(frozen.features[:2])
        # The fixture's profiler is attached but not started; sampling
        # is driven by its own thread only when `serve --profile` runs,
        # so just assert the route shape here.
        status, payload = _get(base_url, "/debug/prof?seconds=5")
        assert status == 200
        assert payload["$schema"].endswith("file-format-schema.json")
        request = urllib.request.Request(
            f"{base_url}/debug/prof?seconds=5&format=collapsed"
        )
        with urllib.request.urlopen(request, timeout=10.0) as response:
            assert response.status == 200
            assert "text/plain" in response.headers.get("Content-Type", "")

    def test_bad_seconds_and_format(self, live_server):
        base_url, _, _ = live_server
        status, _ = _get(base_url, "/debug/prof?seconds=-1")
        assert status == 400
        status, _ = _get(base_url, "/debug/prof?seconds=banana")
        assert status == 400
        status, _ = _get(base_url, "/debug/prof?format=protobuf")
        assert status == 400

    def test_404_when_no_profiler_or_tsdb(self, frozen_and_totals):
        frozen, _ = frozen_and_totals
        service = ProfileService(frozen, max_batch=8, n_workers=1)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base_url = f"http://{host}:{port}"
        try:
            status, _ = _get(base_url, "/debug/prof")
            assert status == 404
            status, _ = _get(base_url, "/query?expr=x")
            assert status == 404
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(5.0)
