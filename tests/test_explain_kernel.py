"""Tests for Kernel SHAP against the exact enumeration."""

import numpy as np
import pytest

from repro.explain.kernel import kernel_shap, shapley_kernel_weight
from repro.explain.shapley import exact_shapley


class TestKernelWeight:
    def test_symmetric_in_subset_size(self):
        m = 8
        for size in range(1, m):
            assert shapley_kernel_weight(m, size) == pytest.approx(
                shapley_kernel_weight(m, m - size)
            )

    def test_extremes_heaviest(self):
        m = 10
        weights = [shapley_kernel_weight(m, s) for s in range(1, m)]
        assert weights[0] == max(weights)
        assert weights[-1] == max(weights)

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(ValueError, match="constraints"):
            shapley_kernel_weight(5, 0)
        with pytest.raises(ValueError, match="constraints"):
            shapley_kernel_weight(5, 5)


class TestKernelShap:
    def test_enumerated_matches_exact(self, rng):
        model = lambda rows: rows[:, 0] ** 2 + rows[:, 1] * rows[:, 2] - rows[:, 3]
        background = rng.normal(size=(25, 4))
        x = rng.normal(size=4)
        exact = exact_shapley(model, x, background)
        kernel = kernel_shap(model, x, background, n_samples=None)
        np.testing.assert_allclose(kernel, exact, atol=1e-8)

    def test_linear_model(self, rng):
        weights = np.array([1.0, -2.0, 3.0])
        model = lambda rows: rows @ weights
        background = rng.normal(size=(40, 3))
        x = np.array([0.5, 0.5, 0.5])
        kernel = kernel_shap(model, x, background)
        expected = weights * (x - background.mean(axis=0))
        np.testing.assert_allclose(kernel, expected, atol=1e-8)

    def test_local_accuracy_always(self, rng):
        model = lambda rows: np.tanh(rows).sum(axis=1)
        background = rng.normal(size=(30, 5))
        x = rng.normal(size=5)
        kernel = kernel_shap(model, x, background, n_samples=200, random_state=0)
        f_x = model(x[None, :])[0]
        base = model(background).mean()
        assert kernel.sum() == pytest.approx(f_x - base, abs=1e-8)

    def test_sampled_approximates_exact(self, rng):
        model = lambda rows: rows[:, 0] * rows[:, 1] + rows[:, 2]
        background = rng.normal(size=(20, 3))
        x = rng.normal(size=3)
        exact = exact_shapley(model, x, background)
        sampled = kernel_shap(model, x, background, n_samples=2000,
                              random_state=1)
        np.testing.assert_allclose(sampled, exact, atol=0.15)

    def test_sampling_deterministic(self, rng):
        model = lambda rows: rows.sum(axis=1)
        background = rng.normal(size=(10, 4))
        x = rng.normal(size=4)
        a = kernel_shap(model, x, background, n_samples=100, random_state=3)
        b = kernel_shap(model, x, background, n_samples=100, random_state=3)
        np.testing.assert_array_equal(a, b)

    def test_too_many_features_without_sampling(self, rng):
        with pytest.raises(ValueError, match="n_samples"):
            kernel_shap(lambda r: r.sum(axis=1), np.ones(20),
                        rng.normal(size=(5, 20)))

    def test_single_feature_rejected(self, rng):
        with pytest.raises(ValueError, match="two features"):
            kernel_shap(lambda r: r[:, 0], np.ones(1), rng.normal(size=(5, 1)))
