"""Tests for the operator dashboard renderer and poll loop."""

import io
import math

from repro.obs import dashboard as dashboard_module
from repro.obs.dashboard import render_dashboard, watch

METRICS = {
    "profile_version": 3,
    "queue_depth": 2,
    "max_queue_depth": 256,
    "counters": {"requests": 120, "errors": 1, "shed_requests": 0},
    "derived": {"qps": 51.5, "p50_ms": 4.1, "p95_ms": 9.9, "p99_ms": 12.0,
                "cache_hit_rate": 0.25, "mean_batch_size": 8.0},
    "cache": {"size": 40},
}

SLO_BODY = {
    "slos": [
        {"name": "serve-availability", "compliance": 0.999,
         "error_budget_remaining": 0.62},
        {"name": "serve-latency", "compliance": 0.8,
         "error_budget_remaining": -0.5},
    ],
    "alerts": [
        {"name": "serve-availability-fast-burn", "state": "firing",
         "burn_long": 20.0, "burn_short": 25.0, "burn_threshold": 14.4,
         "exemplar_trace_id": "deadbeef0001"},
        {"name": "serve-availability-slow-burn", "state": "inactive",
         "burn_long": 0.0, "burn_short": 0.0, "burn_threshold": 1.0},
    ],
}

HEALTH_OK = {"status": "ok", "checks": []}
HEALTH_BAD = {
    "status": "unhealthy",
    "checks": [
        {"name": "breaker", "ok": False, "critical": True,
         "detail": "worker breaker open"},
        {"name": "error_budget", "ok": False, "critical": False,
         "detail": "overspent"},
    ],
}


class TestRenderDashboard:
    def test_unreachable_banner(self):
        frame = render_dashboard(None, color=False, url="http://x:1")
        assert "node unreachable" in frame
        assert "http://x:1" in frame

    def test_traffic_pane(self):
        frame = render_dashboard(METRICS, color=False)
        assert "profile v3" in frame
        assert "requests        120" in frame
        assert "p99   12.00" in frame
        assert "queue    2/256" in frame

    def test_budget_bars_and_alerts(self):
        frame = render_dashboard(METRICS, slo=SLO_BODY, color=False)
        assert "serve-availability" in frame
        assert "62.0%" in frame
        assert "-50.0%" in frame  # overspent budget keeps its sign
        assert "FIRING" in frame
        assert "trace deadbeef0001" in frame
        # inactive alerts stay out of the pane
        assert "slow-burn" not in frame

    def test_no_alerts_message(self):
        frame = render_dashboard(
            METRICS, slo={"slos": [], "alerts": []}, color=False
        )
        assert "none pending or firing" in frame

    def test_health_pane(self):
        frame = render_dashboard(METRICS, health=HEALTH_OK, color=False)
        assert "HEALTHY" in frame
        frame = render_dashboard(METRICS, health=HEALTH_BAD, color=False)
        assert "UNHEALTHY" in frame
        assert "breaker: worker breaker open" in frame

    def test_color_mode_emits_ansi(self):
        plain = render_dashboard(METRICS, slo=SLO_BODY, color=False)
        colored = render_dashboard(METRICS, slo=SLO_BODY, color=True)
        assert "\x1b[" not in plain
        assert "\x1b[31m" in colored  # red for the firing alert

    def test_missing_fields_render_fallback(self):
        frame = render_dashboard({"counters": {}, "derived": {}}, color=False)
        assert "n/a" in frame


class TestWatchLoop:
    def test_renders_requested_frames_without_server(self):
        # No server on this port: every poll fails, every frame paints
        # the unreachable banner — the loop itself must not raise.
        stream = io.StringIO()
        frames = watch(
            "http://127.0.0.1:1/", interval_s=0.0, iterations=3,
            stream=stream, color=False, clear=False, sleep=lambda s: None,
        )
        assert frames == 3
        assert stream.getvalue().count("node unreachable") == 3

    def test_clear_mode_repaints_screen(self):
        stream = io.StringIO()
        watch("http://127.0.0.1:1", interval_s=0.0, iterations=1,
              stream=stream, color=False, clear=True, sleep=lambda s: None)
        assert stream.getvalue().startswith("\x1b[2J")


class TestDegradedPayloads:
    """The renderer must survive what a just-started or idle node serves."""

    def test_empty_registry_metrics_payload(self):
        # A node that has served nothing yet: counters exist but derived
        # quantile gauges are absent or NaN.
        frame = render_dashboard(
            {"counters": {}, "derived": {}, "cache": {}}, color=False
        )
        assert "n/a" in frame
        assert "Traceback" not in frame

    def test_nan_histogram_quantiles_render_na(self):
        # Quantiles over a zero-count histogram arrive as NaN — they
        # must paint as n/a, never as the string "nan".
        metrics = {
            "profile_version": 1,
            "counters": {"requests": 0, "errors": 0, "shed_requests": 0},
            "derived": {"qps": 0.0, "p50_ms": math.nan, "p95_ms": math.nan,
                        "p99_ms": math.nan, "cache_hit_rate": math.nan,
                        "mean_batch_size": math.nan},
            "cache": {"size": 0},
        }
        frame = render_dashboard(metrics, color=False)
        assert "nan" not in frame
        assert frame.count("n/a") >= 5

    def test_all_panes_none_values(self):
        metrics = {
            "profile_version": None,
            "counters": {"requests": None},
            "derived": {"qps": None},
            "cache": {"size": None},
        }
        frame = render_dashboard(
            metrics,
            slo={"slos": [{"name": "s", "compliance": None,
                           "error_budget_remaining": None}],
                 "alerts": []},
            color=False,
        )
        assert "n/a" in frame
        assert "Traceback" not in frame


class TestHistoryPane:
    def test_sparklines_painted_from_history(self):
        history = {
            "req/s": [0.0, 1.0, 2.0, 3.0],
            "queue": [5.0, 5.0, 5.0],
        }
        frame = render_dashboard(METRICS, history=history, color=False)
        assert "history" in frame
        assert "▁" in frame and "█" in frame  # the req/s ramp
        assert "req/s" in frame and "queue" in frame
        assert "3.00" in frame  # latest value of the ramp

    def test_no_history_no_pane(self):
        frame = render_dashboard(METRICS, history={}, color=False)
        assert "history" not in frame

    def test_history_values_rate_payload(self):
        payload = {
            "fn": "rate",
            "series": [{"samples": [[0.0, 0.0], [10.0, 5.0], [20.0, 15.0]]}],
        }
        values = dashboard_module._history_values(payload)
        assert values == [0.5, 1.0]

    def test_history_values_gauge_payload(self):
        payload = {
            "fn": "latest",
            "series": [{"samples": [[0.0, 2.0], [10.0, 7.0]]}],
        }
        assert dashboard_module._history_values(payload) == [2.0, 7.0]

    def test_history_values_empty_series(self):
        assert dashboard_module._history_values({"series": []}) == []
        assert dashboard_module._history_values({}) == []
