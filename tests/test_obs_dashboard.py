"""Tests for the operator dashboard renderer and poll loop."""

import io

from repro.obs.dashboard import render_dashboard, watch

METRICS = {
    "profile_version": 3,
    "queue_depth": 2,
    "max_queue_depth": 256,
    "counters": {"requests": 120, "errors": 1, "shed_requests": 0},
    "derived": {"qps": 51.5, "p50_ms": 4.1, "p95_ms": 9.9, "p99_ms": 12.0,
                "cache_hit_rate": 0.25, "mean_batch_size": 8.0},
    "cache": {"size": 40},
}

SLO_BODY = {
    "slos": [
        {"name": "serve-availability", "compliance": 0.999,
         "error_budget_remaining": 0.62},
        {"name": "serve-latency", "compliance": 0.8,
         "error_budget_remaining": -0.5},
    ],
    "alerts": [
        {"name": "serve-availability-fast-burn", "state": "firing",
         "burn_long": 20.0, "burn_short": 25.0, "burn_threshold": 14.4,
         "exemplar_trace_id": "deadbeef0001"},
        {"name": "serve-availability-slow-burn", "state": "inactive",
         "burn_long": 0.0, "burn_short": 0.0, "burn_threshold": 1.0},
    ],
}

HEALTH_OK = {"status": "ok", "checks": []}
HEALTH_BAD = {
    "status": "unhealthy",
    "checks": [
        {"name": "breaker", "ok": False, "critical": True,
         "detail": "worker breaker open"},
        {"name": "error_budget", "ok": False, "critical": False,
         "detail": "overspent"},
    ],
}


class TestRenderDashboard:
    def test_unreachable_banner(self):
        frame = render_dashboard(None, color=False, url="http://x:1")
        assert "node unreachable" in frame
        assert "http://x:1" in frame

    def test_traffic_pane(self):
        frame = render_dashboard(METRICS, color=False)
        assert "profile v3" in frame
        assert "requests        120" in frame
        assert "p99   12.00" in frame
        assert "queue    2/256" in frame

    def test_budget_bars_and_alerts(self):
        frame = render_dashboard(METRICS, slo=SLO_BODY, color=False)
        assert "serve-availability" in frame
        assert "62.0%" in frame
        assert "-50.0%" in frame  # overspent budget keeps its sign
        assert "FIRING" in frame
        assert "trace deadbeef0001" in frame
        # inactive alerts stay out of the pane
        assert "slow-burn" not in frame

    def test_no_alerts_message(self):
        frame = render_dashboard(
            METRICS, slo={"slos": [], "alerts": []}, color=False
        )
        assert "none pending or firing" in frame

    def test_health_pane(self):
        frame = render_dashboard(METRICS, health=HEALTH_OK, color=False)
        assert "HEALTHY" in frame
        frame = render_dashboard(METRICS, health=HEALTH_BAD, color=False)
        assert "UNHEALTHY" in frame
        assert "breaker: worker breaker open" in frame

    def test_color_mode_emits_ansi(self):
        plain = render_dashboard(METRICS, slo=SLO_BODY, color=False)
        colored = render_dashboard(METRICS, slo=SLO_BODY, color=True)
        assert "\x1b[" not in plain
        assert "\x1b[31m" in colored  # red for the firing alert

    def test_missing_fields_render_fallback(self):
        frame = render_dashboard({"counters": {}, "derived": {}}, color=False)
        assert "n/a" in frame


class TestWatchLoop:
    def test_renders_requested_frames_without_server(self):
        # No server on this port: every poll fails, every frame paints
        # the unreachable banner — the loop itself must not raise.
        stream = io.StringIO()
        frames = watch(
            "http://127.0.0.1:1/", interval_s=0.0, iterations=3,
            stream=stream, color=False, clear=False, sleep=lambda s: None,
        )
        assert frames == 3
        assert stream.getvalue().count("node unreachable") == 3

    def test_clear_mode_repaints_screen(self):
        stream = io.StringIO()
        watch("http://127.0.0.1:1", interval_s=0.0, iterations=1,
              stream=stream, color=False, clear=True, sleep=lambda s: None)
        assert stream.getvalue().startswith("\x1b[2J")
