"""Tests for the metrics registry: primitives, labels, exposition."""

import json
import threading

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        second = registry.counter("c_total")
        first.inc()
        assert second.value == 1

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_label_schema_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("route",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("c_total", labelnames=("verb",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name")
        with pytest.raises(ValueError):
            registry.counter("ok_name", labelnames=("bad-label",))


class TestLabels:
    def test_labeled_series_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total", labelnames=("route",))
        family.labels(route="/a").inc(2)
        family.labels(route="/b").inc(3)
        assert family.labels(route="/a").value == 2
        assert family.labels(route="/b").value == 3

    def test_positional_and_keyword_labels_agree(self):
        family = MetricsRegistry().counter("c_total", labelnames=("x",))
        family.labels("v").inc()
        assert family.labels(x="v").value == 1

    def test_wrong_label_count_rejected(self):
        family = MetricsRegistry().counter("c_total", labelnames=("x", "y"))
        with pytest.raises(ValueError):
            family.labels("only-one")
        with pytest.raises(ValueError):
            family.labels(x="a", z="b")

    def test_unlabeled_shortcut_rejected_on_labeled_family(self):
        family = MetricsRegistry().counter("c_total", labelnames=("x",))
        with pytest.raises(ValueError, match="labeled"):
            family.inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == pytest.approx(12.0)

    def test_scrape_time_function(self):
        gauge = MetricsRegistry().gauge("g")
        values = iter([1.0, 2.0])
        gauge.set_function(lambda: next(values))
        assert gauge.value == 1.0
        assert gauge.value == 2.0


class TestHistogram:
    def test_observe_and_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 100.0):
            hist.observe(value)
        cumulative = dict(hist.cumulative_buckets())
        assert cumulative[1.0] == 2
        assert cumulative[5.0] == 3
        assert cumulative[float("inf")] == 4
        assert hist.count == 4
        assert hist.sum == pytest.approx(104.2)

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_bucket_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", buckets=(2.0,))


class TestPrometheusText:
    def test_counter_format(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Total requests").inc(7)
        text = registry.prometheus_text()
        assert "# HELP requests_total Total requests\n" in text
        assert "# TYPE requests_total counter\n" in text
        assert "\nrequests_total 7\n" in text

    def test_labeled_series_sorted_and_quoted(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total", labelnames=("route",))
        family.labels(route="/b").inc()
        family.labels(route="/a").inc(2)
        text = registry.prometheus_text()
        assert text.index('hits_total{route="/a"} 2') < text.index(
            'hits_total{route="/b"} 1'
        )

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        family = registry.gauge("g", labelnames=("name",))
        family.labels(name='say "hi"\nback\\slash').set(1)
        text = registry.prometheus_text()
        assert r'name="say \"hi\"\nback\\slash"' in text

    def test_histogram_renders_inf_sum_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = registry.prometheus_text()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 5.05" in text
        assert "lat_seconds_count 2" in text

    def test_every_series_line_parses(self):
        """Each non-comment line is `name{labels} value` with float value."""
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.gauge("b", labelnames=("x",)).labels(x="1").set(2.5)
        registry.histogram("c", buckets=(1.0,)).observe(0.5)
        for line in registry.prometheus_text().splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value_part = line.rsplit(" ", 1)
            assert name_part
            float(value_part)  # must parse

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().prometheus_text() == ""


class TestExemplars:
    def _hist(self, buckets=(0.1, 1.0)):
        return MetricsRegistry().histogram("lat_seconds", buckets=buckets)

    def test_observe_without_exemplar_retains_nothing(self):
        hist = self._hist()
        hist.observe(0.05)
        assert hist.exemplars() == []

    def test_latest_exemplar_per_bucket(self):
        hist = self._hist()
        hist.observe(0.04, exemplar="aaa")
        hist.observe(0.06, exemplar="bbb")  # same bucket: replaces aaa
        hist.observe(0.5, exemplar="ccc")
        retained = hist.exemplars()
        assert [(e.trace_id, e.value) for e in retained] == [
            ("bbb", 0.06), ("ccc", 0.5),
        ]
        assert [e.bucket_le for e in retained] == [0.1, 1.0]

    def test_overflow_bucket_le_is_inf(self):
        hist = self._hist()
        hist.observe(30.0, exemplar="slow")
        [exemplar] = hist.exemplars()
        assert exemplar.bucket_le == float("inf")

    def test_worst_exemplars_walks_highest_bucket_first(self):
        hist = self._hist()
        hist.observe(0.05, exemplar="fast")
        hist.observe(0.5, exemplar="mid")
        hist.observe(30.0, exemplar="slow")
        worst = hist.worst_exemplars(2)
        assert [e.trace_id for e in worst] == ["slow", "mid"]
        assert hist.worst_exemplars(0) == []
        assert [e.trace_id for e in hist.worst_exemplars(10)] == [
            "slow", "mid", "fast",
        ]

    def test_prometheus_text_exemplar_suffix(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05, exemplar="deadbeef0001")
        hist.observe(0.05)  # bare observation keeps the exemplar
        text = registry.prometheus_text()
        assert (
            'lat_seconds_bucket{le="0.1"} 2 '
            '# {trace_id="deadbeef0001"} 0.05'
        ) in text
        # Buckets without a retained exemplar render the classic line.
        assert 'lat_seconds_bucket{le="1"} 2\n' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2\n' in text

    def test_to_dict_exemplars_list(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1,))
        hist.observe(7.0, exemplar="cafe")
        snapshot = json.loads(json.dumps(registry.to_dict()))
        assert snapshot["lat_seconds"]["series"][0]["exemplars"] == [
            {"bucket": "+Inf", "value": 7.0, "trace_id": "cafe"}
        ]

    def test_labeled_series_keep_separate_exemplars(self):
        registry = MetricsRegistry()
        family = registry.histogram(
            "lat_seconds", buckets=(1.0,), labelnames=("route",)
        )
        family.labels(route="/a").observe(0.5, exemplar="aaa")
        family.labels(route="/b").observe(0.5, exemplar="bbb")
        by_route = {
            labels: [e.trace_id for e in child.exemplars()]
            for labels, child in family.series()
        }
        assert by_route == {("/a",): ["aaa"], ("/b",): ["bbb"]}


class TestJsonExposition:
    def test_to_dict_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help").inc(3)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = json.loads(json.dumps(registry.to_dict()))
        assert snapshot["c_total"]["type"] == "counter"
        assert snapshot["c_total"]["series"][0]["value"] == 3
        assert snapshot["h"]["series"][0]["count"] == 1
        assert snapshot["h"]["series"][0]["buckets"]["+Inf"] == 1


class TestRegistryLifecycle:
    def test_unregister_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        registry.counter("b_total")
        registry.unregister("a_total")
        assert registry.get("a_total") is None
        registry.reset()
        assert registry.families() == []

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        hist = registry.histogram("h", buckets=(0.5,))
        n_threads, n_iter = 8, 2000

        def worker():
            for _ in range(n_iter):
                counter.inc()
                hist.observe(0.1)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == n_threads * n_iter
        assert hist.count == n_threads * n_iter
