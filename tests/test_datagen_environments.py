"""Tests for environment types and deployment specs (Table 1)."""

import pytest

from repro.datagen.environments import (
    DEFAULT_SPECS,
    EnvironmentSpec,
    EnvironmentType,
    METRO_CITIES,
    NAME_KEYWORDS,
    TABLE1_COUNTS,
    TOTAL_INDOOR_ANTENNAS,
    default_specs,
    spec_for,
)


class TestTable1:
    def test_eleven_environment_types(self):
        assert len(EnvironmentType) == 11

    def test_counts_match_paper(self):
        # Exact N_env values from Table 1.
        assert TABLE1_COUNTS[EnvironmentType.METRO] == 1794
        assert TABLE1_COUNTS[EnvironmentType.TRAIN] == 434
        assert TABLE1_COUNTS[EnvironmentType.AIRPORT] == 187
        assert TABLE1_COUNTS[EnvironmentType.WORKSPACE] == 774
        assert TABLE1_COUNTS[EnvironmentType.COMMERCIAL] == 469
        assert TABLE1_COUNTS[EnvironmentType.STADIUM] == 451
        assert TABLE1_COUNTS[EnvironmentType.EXPO] == 230
        assert TABLE1_COUNTS[EnvironmentType.HOTEL] == 28
        assert TABLE1_COUNTS[EnvironmentType.HOSPITAL] == 53
        assert TABLE1_COUNTS[EnvironmentType.TUNNEL] == 220
        assert TABLE1_COUNTS[EnvironmentType.PUBLIC] == 122

    def test_total_is_4762(self):
        assert sum(TABLE1_COUNTS.values()) == TOTAL_INDOOR_ANTENNAS == 4762

    def test_default_specs_cover_all_types(self):
        covered = {spec.env_type for spec in DEFAULT_SPECS}
        assert covered == set(EnvironmentType)

    def test_default_specs_counts_match_table1(self):
        for spec in DEFAULT_SPECS:
            assert spec.count == TABLE1_COUNTS[spec.env_type]

    def test_spec_for(self):
        assert spec_for(EnvironmentType.METRO).count == 1794

    def test_default_specs_returns_tuple(self):
        assert isinstance(default_specs(), tuple)


class TestKeywords:
    def test_every_type_has_keywords(self):
        for env in EnvironmentType:
            assert NAME_KEYWORDS[env], env

    def test_keywords_disjoint(self):
        seen = {}
        for env, keywords in NAME_KEYWORDS.items():
            for keyword in keywords:
                assert keyword not in seen, (keyword, env, seen.get(keyword))
                seen[keyword] = env

    def test_metro_cities(self):
        assert "Paris" in METRO_CITIES
        assert set(METRO_CITIES) == {"Paris", "Lille", "Lyon", "Rennes", "Toulouse"}


class TestEnvironmentSpecValidation:
    def _base(self, **overrides):
        params = dict(
            env_type=EnvironmentType.HOTEL,
            count=10,
            paris_fraction=0.5,
            antennas_per_site=(1, 3),
            volume_scale=1e5,
        )
        params.update(overrides)
        return EnvironmentSpec(**params)

    def test_valid(self):
        assert self._base().count == 10

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError, match="count"):
            self._base(count=0)

    def test_rejects_bad_paris_fraction(self):
        with pytest.raises(ValueError, match="paris_fraction"):
            self._base(paris_fraction=1.5)

    def test_rejects_inverted_site_range(self):
        with pytest.raises(ValueError, match="antennas_per_site"):
            self._base(antennas_per_site=(5, 2))

    def test_rejects_bad_surrounding_weights(self):
        with pytest.raises(ValueError, match="surrounding_weights"):
            self._base(surrounding_weights=(0.5, 0.4, 0.2))
