"""Tests for the cluster-aware caching planner."""

import numpy as np
import pytest

from repro.apps.caching import (
    CachePlan,
    cacheable_fractions,
    cluster_aware_gain,
    global_cache_hit,
    plan_all_caches,
    plan_cluster_cache,
)
from repro.datagen.services import default_catalog


@pytest.fixture(scope="module")
def catalog():
    return default_catalog()


class TestCacheableFractions:
    def test_shape_and_bounds(self, catalog):
        fractions = cacheable_fractions(catalog)
        assert fractions.shape == (73,)
        assert np.all((0 <= fractions) & (fractions <= 1))

    def test_streaming_more_cacheable_than_messaging(self, catalog):
        fractions = cacheable_fractions(catalog)
        netflix = fractions[catalog.index_of("Netflix")]
        whatsapp = fractions[catalog.index_of("WhatsApp")]
        assert netflix > 4 * whatsapp


class TestPlanClusterCache:
    def test_budget_respected(self, small_dataset, small_profile, catalog):
        plan = plan_cluster_cache(
            small_dataset.totals, small_profile.labels, 0, catalog, budget=5
        )
        assert len(plan.cached_services) == 5
        assert 0 < plan.hit_fraction < 1

    def test_office_cluster_does_not_cache_netflix_first(
        self, small_dataset, small_profile, catalog
    ):
        office = plan_cluster_cache(
            small_dataset.totals, small_profile.labels, 3, catalog, budget=5
        )
        general = plan_cluster_cache(
            small_dataset.totals, small_profile.labels, 1, catalog, budget=5
        )
        # The general cluster caches streaming; the office cluster's top
        # picks diverge (its streaming demand is suppressed).
        assert set(office.cached_services) != set(general.cached_services)

    def test_commuter_cluster_caches_music(
        self, small_dataset, small_profile, catalog
    ):
        plan = plan_cluster_cache(
            small_dataset.totals, small_profile.labels, 0, catalog, budget=8
        )
        music = {"Spotify", "Deezer", "Apple Music", "YouTube Music",
                 "SoundCloud"}
        assert set(plan.cached_services) & music

    def test_hit_fraction_grows_with_budget(
        self, small_dataset, small_profile, catalog
    ):
        small = plan_cluster_cache(
            small_dataset.totals, small_profile.labels, 1, catalog, budget=3
        )
        large = plan_cluster_cache(
            small_dataset.totals, small_profile.labels, 1, catalog, budget=20
        )
        assert large.hit_fraction > small.hit_fraction

    def test_validation(self, small_dataset, small_profile, catalog):
        with pytest.raises(ValueError, match="budget"):
            plan_cluster_cache(small_dataset.totals, small_profile.labels,
                               0, catalog, budget=0)
        with pytest.raises(ValueError, match="no member"):
            plan_cluster_cache(small_dataset.totals, small_profile.labels,
                               42, catalog)
        with pytest.raises(ValueError, match="labels length"):
            plan_cluster_cache(small_dataset.totals,
                               small_profile.labels[:-1], 0, catalog)


class TestPolicies:
    def test_plan_all_covers_clusters(self, small_dataset, small_profile,
                                      catalog):
        plans = plan_all_caches(small_dataset.totals, small_profile.labels,
                                catalog, budget=5)
        assert sorted(plans) == sorted(small_profile.cluster_sizes())

    def test_global_hit_bounds(self, small_dataset, catalog):
        hit = global_cache_hit(small_dataset.totals, catalog, budget=10)
        assert 0 < hit < 1

    def test_cluster_aware_beats_global(self, small_dataset, small_profile,
                                        catalog):
        aware, global_hit = cluster_aware_gain(
            small_dataset.totals, small_profile.labels, catalog, budget=10
        )
        # The paper's environment-aware orchestration argument: matching
        # the cache to each environment's demand can only help.
        assert aware >= global_hit - 1e-9
        assert aware > 0

    def test_gain_vanishes_with_full_budget(self, small_dataset,
                                            small_profile, catalog):
        aware, global_hit = cluster_aware_gain(
            small_dataset.totals, small_profile.labels, catalog, budget=73
        )
        assert aware == pytest.approx(global_hit)


class TestCachePlanValidation:
    def test_hit_fraction_bounds(self):
        with pytest.raises(ValueError, match="hit_fraction"):
            CachePlan(0, ("Netflix",), 1.5)
