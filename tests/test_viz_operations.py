"""Tests for the operations/forecast renderers."""

import numpy as np
import pytest

from repro.apps.energy import SleepSchedule
from repro.viz.operations import (
    render_capacity_schedule,
    render_forecast_strip,
    render_hour_profile,
    render_pca_scatter,
    render_sleep_calendar,
    render_weekly_profile,
)


class TestHourProfile:
    def test_renders(self):
        out = render_hour_profile(np.arange(24, dtype=float), title="load")
        lines = out.splitlines()
        assert lines[0] == "load"
        assert len(lines[1]) == 24

    def test_zero_profile(self):
        out = render_hour_profile(np.zeros(24))
        assert out.splitlines()[1] == " " * 24

    def test_wrong_length(self):
        with pytest.raises(ValueError, match="24"):
            render_hour_profile(np.ones(23))


class TestWeeklyProfile:
    def test_renders_seven_days(self):
        out = render_weekly_profile(np.random.default_rng(0).random(168))
        lines = out.splitlines()
        assert len(lines) == 8
        assert lines[1].startswith("Mon")
        assert lines[7].startswith("Sun")

    def test_wrong_length(self):
        with pytest.raises(ValueError, match="168"):
            render_weekly_profile(np.ones(100))


class TestCapacityAndSleep:
    def test_capacity_schedule(self):
        schedule = np.full(24, 0.2)
        schedule[8] = 1.0
        out = render_capacity_schedule(schedule, cluster=3)
        assert "slice c3" in out

    def test_sleep_calendar(self):
        schedule = SleepSchedule(5, (0, 1, 2), (0, 1, 2, 3), 0.25, 0.02)
        out = render_sleep_calendar(schedule)
        lines = out.splitlines()
        assert "cluster 5" in lines[0]
        assert lines[1].startswith("weekdays zzz.")
        assert lines[2].startswith("weekends zzzz.")


class TestForecastStrip:
    def test_short_series(self):
        actual = np.array([1.0, 2.0, 3.0, 2.0])
        forecast = np.array([1.0, 2.0, 2.5, 2.0])
        out = render_forecast_strip(actual, forecast)
        lines = out.splitlines()
        assert lines[1].startswith("actual")
        assert lines[2].startswith("forecast")

    def test_downsamples_long_series(self):
        series = np.random.default_rng(0).random(500)
        out = render_forecast_strip(series, series, width=40)
        body = out.splitlines()[1][len("actual   "):]
        assert len(body) == 40

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            render_forecast_strip(np.ones(3), np.ones(4))


class TestPcaScatter:
    def test_renders_cluster_digits(self, rng):
        points = np.vstack([
            rng.normal([-5, -5], 0.3, size=(30, 2)),
            rng.normal([5, 5], 0.3, size=(30, 2)),
        ])
        labels = np.repeat([1, 2], 30)
        out = render_pca_scatter(points, labels, width=30, height=10)
        assert "1" in out
        assert "2" in out

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="two columns"):
            render_pca_scatter(rng.normal(size=(5, 1)), [0] * 5)
        with pytest.raises(ValueError, match="one label"):
            render_pca_scatter(rng.normal(size=(5, 2)), [0] * 4)
