"""Tests for demand-anomaly detection."""

import numpy as np
import pytest

from repro.apps.anomaly import (
    Anomaly,
    anomalies_on_date,
    detect_anomalies,
    weekly_baseline,
)
from repro.forecast.models import WEEK_HOURS


def periodic_series(n_weeks=4):
    base = 2.0 + np.sin(np.linspace(0, 2 * np.pi, 24))
    return np.tile(base, 7 * n_weeks).astype(float)


class TestWeeklyBaseline:
    def test_pure_periodic_baseline_is_series(self):
        series = periodic_series()
        np.testing.assert_allclose(weekly_baseline(series), series)

    def test_median_robust_to_single_burst(self):
        series = periodic_series(5)
        series[500] *= 50.0
        baseline = weekly_baseline(series)
        # The burst hour's baseline stays at the quiet median.
        assert baseline[500] < 5.0


class TestDetectAnomalies:
    def test_clean_series_has_no_anomalies(self):
        assert detect_anomalies(periodic_series()) == []

    def test_surge_detected(self):
        series = periodic_series(5)
        series[400:404] *= 20.0
        anomalies = detect_anomalies(series)
        assert len(anomalies) == 1
        anomaly = anomalies[0]
        assert anomaly.kind == "surge"
        assert anomaly.start_index == 400
        assert anomaly.end_index == 403
        assert anomaly.duration_hours == 4

    def test_drought_detected(self):
        series = periodic_series(5)
        series[300:320] *= 0.02
        anomalies = detect_anomalies(series)
        assert any(a.kind == "drought" and a.start_index == 300
                   for a in anomalies)

    def test_single_hour_noise_ignored(self):
        series = periodic_series(5)
        series[250] *= 20.0
        assert detect_anomalies(series, min_duration=2) == []

    def test_adjacent_opposite_spans_split(self):
        series = periodic_series(5)
        series[100:104] *= 20.0
        series[104:108] *= 0.02
        anomalies = detect_anomalies(series)
        kinds = [a.kind for a in anomalies]
        assert "surge" in kinds and "drought" in kinds

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            detect_anomalies(periodic_series(), threshold=0.0)
        with pytest.raises(ValueError, match="min_duration"):
            detect_anomalies(periodic_series(), min_duration=0)

    def test_anomaly_container_validation(self):
        with pytest.raises(ValueError, match="precedes"):
            Anomaly(5, 4, "surge", 1.0)
        with pytest.raises(ValueError, match="surge/drought"):
            Anomaly(0, 1, "weird", 1.0)


class TestOnGeneratedData:
    def test_strike_flagged_as_drought(self, small_dataset, small_profile):
        """The 19 Jan strike shows up as a drought at commuter antennas."""
        from repro.datagen.calendar import STRIKE_DAY

        members = np.flatnonzero(small_profile.labels == 0)[:15]
        series = small_dataset.hourly_total(antenna_ids=members).mean(axis=0)
        anomalies = detect_anomalies(series, threshold=1.0)
        hours = small_dataset.calendar.hours
        strikes = anomalies_on_date(anomalies, hours, STRIKE_DAY,
                                    kind="drought")
        assert strikes, "the strike day must be flagged as a drought"

    def test_nba_flagged_as_surge(self, small_dataset):
        """The NBA evening surges at the hosting arena."""
        from repro.datagen.calendar import STRIKE_DAY
        from repro.datagen.environments import EnvironmentType

        nba_site = next(
            s.site_id for s in small_dataset.sites
            if s.env_type == EnvironmentType.STADIUM and s.is_paris
        )
        members = [a.antenna_id for a in small_dataset.antennas
                   if a.site_id == nba_site]
        series = small_dataset.hourly_total(antenna_ids=members).mean(axis=0)
        anomalies = detect_anomalies(series, threshold=1.0)
        hours = small_dataset.calendar.hours
        surges = anomalies_on_date(anomalies, hours, STRIKE_DAY, kind="surge")
        assert surges, "the NBA evening must be flagged as a surge"

    def test_date_filter(self, small_dataset):
        hours = small_dataset.calendar.hours
        anomaly = Anomaly(10, 12, "surge", 2.0)
        hits = anomalies_on_date([anomaly], hours,
                                 hours[11].astype("datetime64[D]"))
        assert hits == [anomaly]
