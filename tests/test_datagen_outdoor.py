"""Tests for the outdoor macro population generator."""

import numpy as np
import pytest

from repro.datagen.antennas import DEG_PER_KM_LAT
from repro.datagen.outdoor import generate_outdoor, neighbours_within
from repro.datagen.services import default_catalog


@pytest.fixture(scope="module")
def outdoor(small_dataset_module):
    antennas, totals = generate_outdoor(
        small_dataset_module.sites, small_dataset_module.catalog,
        master_seed=11, count=800,
    )
    return small_dataset_module, antennas, totals


@pytest.fixture(scope="module")
def small_dataset_module():
    from repro.datagen.dataset import generate_dataset
    from tests.conftest import scaled_specs

    return generate_dataset(master_seed=11, specs=scaled_specs(0.1))


class TestGenerateOutdoor:
    def test_count_and_shape(self, outdoor):
        _, antennas, totals = outdoor
        assert len(antennas) == 800
        assert totals.shape == (800, 73)

    def test_positive_totals(self, outdoor):
        _, _, totals = outdoor
        assert np.all(totals > 0)

    def test_anchored_within_1km(self, outdoor):
        dataset, antennas, _ = outdoor
        sites = {s.site_id: s for s in dataset.sites}
        for antenna in antennas:
            anchor = sites[antenna.anchor_site_id]
            dy = (antenna.lat - anchor.lat) / DEG_PER_KM_LAT
            dx = ((antenna.lon - anchor.lon)
                  * np.cos(np.radians(anchor.lat)) / DEG_PER_KM_LAT)
            assert dx * dx + dy * dy <= 1.0 + 1e-9

    def test_mix_close_to_popularity_on_average(self, outdoor):
        _, _, totals = outdoor
        shares = totals / totals.sum(axis=1, keepdims=True)
        popularity = default_catalog().popularity_weights()
        # The mean outdoor mix tracks the global popularity mix.
        correlation = np.corrcoef(shares.mean(axis=0), popularity)[0, 1]
        assert correlation > 0.98

    def test_deterministic(self, small_dataset_module):
        a = generate_outdoor(small_dataset_module.sites,
                             small_dataset_module.catalog,
                             master_seed=5, count=50)
        b = generate_outdoor(small_dataset_module.sites,
                             small_dataset_module.catalog,
                             master_seed=5, count=50)
        np.testing.assert_array_equal(a[1], b[1])

    def test_seed_changes_totals(self, small_dataset_module):
        a = generate_outdoor(small_dataset_module.sites,
                             small_dataset_module.catalog,
                             master_seed=5, count=50)
        b = generate_outdoor(small_dataset_module.sites,
                             small_dataset_module.catalog,
                             master_seed=6, count=50)
        assert not np.array_equal(a[1], b[1])

    def test_spillover_zero_gives_pure_general(self, small_dataset_module):
        _, totals = generate_outdoor(
            small_dataset_module.sites, small_dataset_module.catalog,
            master_seed=5, count=300, spillover_fraction=0.0,
        )
        shares = totals / totals.sum(axis=1, keepdims=True)
        popularity = default_catalog().popularity_weights()
        # Without spillover, per-antenna deviation is pure noise: the log
        # share ratio should have modest spread for every antenna.
        log_ratio = np.log(shares / popularity[None, :])
        assert np.all(np.abs(log_ratio.mean(axis=1)) < 0.5)

    def test_validation(self, small_dataset_module):
        with pytest.raises(ValueError, match="count"):
            generate_outdoor(small_dataset_module.sites,
                             small_dataset_module.catalog, count=0)
        with pytest.raises(ValueError, match="spillover_fraction"):
            generate_outdoor(small_dataset_module.sites,
                             small_dataset_module.catalog,
                             count=10, spillover_fraction=1.5)
        with pytest.raises(ValueError, match="anchor"):
            generate_outdoor([], small_dataset_module.catalog, count=10)


class TestNeighbours:
    def test_neighbours_within_radius(self, outdoor):
        dataset, antennas, _ = outdoor
        site = dataset.sites[0]
        near = neighbours_within(antennas, site, radius_km=1.0)
        ids = {a.antenna_id for a in near}
        # Every antenna anchored on this site must be found.
        anchored = {a.antenna_id for a in antennas
                    if a.anchor_site_id == site.site_id}
        assert anchored <= ids

    def test_radius_validation(self, outdoor):
        dataset, antennas, _ = outdoor
        with pytest.raises(ValueError, match="radius_km"):
            neighbours_within(antennas, dataset.sites[0], radius_km=0.0)
