"""Tests for burn-rate alerting: rules, state machine, exemplars."""

import threading
import time
from types import SimpleNamespace

import pytest

import repro.obs.registry as registry_module
from repro.obs.alerts import (
    ALERT_STATES,
    AlertManager,
    BurnRateRule,
    default_rules,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLO, SLOEngine
from repro.obs.trace import disable_tracing, enable_tracing, span


def build_engine(registry=None, objective=0.99):
    """Engine over one SLO fed by a mutable counter pair."""
    state = {"good": 0.0, "total": 0.0}
    slo = SLO(
        name="svc", objective=objective, window_s=60.0,
        good=lambda: state["good"], total=lambda: state["total"],
    )
    engine = SLOEngine(
        [slo], registry=registry if registry is not None else MetricsRegistry()
    )
    return engine, state


def fast_rule(**overrides):
    params = dict(name="svc-fast", slo="svc", long_window_s=60.0,
                  short_window_s=10.0, burn_threshold=2.0, for_s=0.0)
    params.update(overrides)
    return BurnRateRule(**params)


class TestRuleValidation:
    def test_short_window_must_be_shorter(self):
        with pytest.raises(ValueError, match="short"):
            fast_rule(short_window_s=60.0)

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="burn_threshold"):
            fast_rule(burn_threshold=0.0)

    def test_unknown_slo_rejected_at_construction(self):
        engine, _ = build_engine()
        with pytest.raises(ValueError, match="unknown SLO"):
            AlertManager(engine, [fast_rule(slo="nope")])

    def test_duplicate_alert_names_rejected(self):
        engine, _ = build_engine()
        with pytest.raises(ValueError, match="duplicate"):
            AlertManager(engine, [fast_rule(), fast_rule()])


class TestStateMachine:
    def _storm(self, engine, state, manager, errors=50.0, total=100.0):
        """Drive a burst of errors through two tick/evaluate rounds."""
        engine.tick(now=0.0)
        manager.evaluate(now=0.0)
        state.update(good=total - errors, total=total)
        engine.tick(now=5.0)
        manager.evaluate(now=5.0)

    def test_pending_then_firing_then_resolved(self):
        engine, state = build_engine()
        manager = AlertManager(engine, [fast_rule()])
        alert = manager.get("svc-fast")
        self._storm(engine, state, manager)
        assert alert.state == "pending"

        # Condition still holds on a later evaluation -> firing.
        state.update(good=100.0, total=200.0)
        engine.tick(now=8.0)
        changed = manager.evaluate(now=8.0)
        assert alert.state == "firing"
        assert changed == [alert]
        assert alert.fired_count == 1

        # Clean traffic pushes the burn under threshold -> resolved.
        state.update(good=1100.0, total=1200.0)
        engine.tick(now=100.0)
        manager.evaluate(now=100.0)
        assert alert.state == "resolved"

    def test_pending_that_lapses_returns_to_inactive(self):
        engine, state = build_engine()
        manager = AlertManager(engine, [fast_rule()])
        alert = manager.get("svc-fast")
        self._storm(engine, state, manager)
        assert alert.state == "pending"
        state.update(good=10100.0, total=10200.0)
        engine.tick(now=100.0)
        manager.evaluate(now=100.0)
        assert alert.state == "inactive"
        assert alert.fired_count == 0

    def test_for_s_grace_delays_firing(self):
        engine, state = build_engine()
        manager = AlertManager(engine, [fast_rule(for_s=10.0)])
        alert = manager.get("svc-fast")
        self._storm(engine, state, manager)
        state.update(good=100.0, total=200.0)
        engine.tick(now=8.0)
        manager.evaluate(now=8.0)  # held 3s < 10s grace
        assert alert.state == "pending"
        state.update(good=150.0, total=300.0)
        engine.tick(now=16.0)
        manager.evaluate(now=16.0)  # held 11s >= 10s
        assert alert.state == "firing"

    def test_both_windows_must_exceed_threshold(self):
        engine, state = build_engine()
        manager = AlertManager(engine, [fast_rule()])
        alert = manager.get("svc-fast")
        # Old storm inside the long window, clean short window.
        engine.tick(now=0.0)
        state.update(good=50.0, total=100.0)
        engine.tick(now=5.0)
        state.update(good=1050.0, total=1100.0)
        engine.tick(now=55.0)
        manager.evaluate(now=55.0)
        assert alert.burn_long > 2.0
        assert alert.burn_short < 2.0
        assert alert.state == "inactive"

    def test_metrics_exported_on_transitions(self):
        registry = MetricsRegistry()
        engine, state = build_engine(registry=registry)
        manager = AlertManager(engine, [fast_rule()], registry=registry)
        self._storm(engine, state, manager)
        gauge = dict(registry.get("repro_alert_state").series())
        assert gauge[("svc-fast",)].value == ALERT_STATES["pending"]
        transitions = dict(
            registry.get("repro_alert_transitions_total").series()
        )
        assert transitions[("svc-fast", "pending")].value == 1
        burn = dict(registry.get("repro_slo_burn_rate").series())
        assert burn[("svc", "60s")].value > 0.0
        assert burn[("svc", "10s")].value > 0.0


class TestExemplarCapture:
    def test_firing_alert_carries_worst_exemplar(self):
        # Synthetic trace ids resolve in no store; with tracing off the
        # capture path judges freshness only, which is what this covers.
        disable_tracing()
        registry = MetricsRegistry()
        state = {"good": 0.0, "total": 0.0}
        slo = SLO(
            name="svc", objective=0.99, window_s=60.0,
            good=lambda: state["good"], total=lambda: state["total"],
            exemplar_metric="lat_seconds",
        )
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05, exemplar="trace-fast")
        hist.observe(5.0, exemplar="trace-slow")
        engine = SLOEngine([slo], registry=registry)
        manager = AlertManager(engine, [fast_rule()], registry=registry)
        engine.tick(now=0.0)
        manager.evaluate(now=0.0)
        state.update(good=50.0, total=100.0)
        engine.tick(now=5.0)
        manager.evaluate(now=5.0)
        engine.tick(now=8.0)
        manager.evaluate(now=8.0)
        alert = manager.get("svc-fast")
        assert alert.state == "firing"
        assert alert.exemplar_trace_id == "trace-slow"
        assert alert.exemplar_value == 5.0
        assert alert.to_dict()["exemplar_trace_id"] == "trace-slow"

    def _fire_with_histogram(self, registry):
        """Drive the svc-fast alert to firing over a histogram-backed SLO."""
        state = {"good": 0.0, "total": 0.0}
        slo = SLO(
            name="svc", objective=0.99, window_s=60.0,
            good=lambda: state["good"], total=lambda: state["total"],
            exemplar_metric="lat_seconds",
        )
        engine = SLOEngine([slo], registry=registry)
        manager = AlertManager(engine, [fast_rule()], registry=registry)
        engine.tick(now=0.0)
        manager.evaluate(now=0.0)
        state.update(good=50.0, total=100.0)
        engine.tick(now=5.0)
        manager.evaluate(now=5.0)
        engine.tick(now=8.0)
        manager.evaluate(now=8.0)
        alert = manager.get("svc-fast")
        assert alert.state == "firing"
        return alert

    def test_stale_exemplar_never_attached(self, monkeypatch):
        # Exemplar slots keep the latest observation per bucket forever;
        # one recorded long before the incident (here: stamped 1000s in
        # the past) must not be attached to a firing alert.
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        monkeypatch.setattr(
            registry_module, "time",
            SimpleNamespace(monotonic=lambda: time.monotonic() - 1000.0),
        )
        hist.observe(5.0, exemplar="trace-ancient")
        monkeypatch.undo()
        alert = self._fire_with_histogram(registry)
        assert alert.exemplar_trace_id is None
        assert alert.exemplar_value is None

    def test_unresolvable_exemplar_skipped_for_resolvable_one(self):
        # With tracing live, a fresh exemplar whose trace the bounded
        # store no longer holds is skipped in favour of one that still
        # resolves — even when the dangling one sits in a worse bucket.
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        store = enable_tracing(capacity=16, clear=True)
        try:
            with span("alerts.test"):
                pass
            real_trace = store.spans()[-1].trace_id
            hist.observe(9.0, exemplar="evicted-trace")
            hist.observe(0.5, exemplar=real_trace)
            alert = self._fire_with_histogram(registry)
            assert alert.exemplar_trace_id == real_trace
            assert alert.exemplar_value == 0.5
        finally:
            disable_tracing()
            store.clear()

    def test_no_exemplar_metric_leaves_alert_uncorrelated(self):
        engine, state = build_engine()
        manager = AlertManager(engine, [fast_rule()])
        engine.tick(now=0.0)
        state.update(good=50.0, total=100.0)
        engine.tick(now=5.0)
        manager.evaluate(now=5.0)
        engine.tick(now=8.0)
        manager.evaluate(now=8.0)
        alert = manager.get("svc-fast")
        assert alert.state == "firing"
        assert alert.exemplar_trace_id is None


class TestEvaluateConcurrency:
    def test_racing_evaluations_escalate_exactly_once(self):
        # Many scrape threads re-judging a pending alert at once must
        # produce exactly one pending -> firing transition: one
        # fired_count increment, one transition-counter bump.
        registry = MetricsRegistry()
        engine, state = build_engine(registry=registry)
        manager = AlertManager(engine, [fast_rule()], registry=registry)
        engine.tick(now=0.0)
        manager.evaluate(now=0.0)
        state.update(good=50.0, total=100.0)
        engine.tick(now=5.0)
        manager.evaluate(now=5.0)  # rising edge: pending
        assert manager.get("svc-fast").state == "pending"
        engine.tick(now=8.0)
        threads = [
            threading.Thread(target=manager.evaluate, kwargs={"now": 8.0})
            for _ in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        alert = manager.get("svc-fast")
        assert alert.state == "firing"
        assert alert.fired_count == 1
        transitions = dict(
            registry.get("repro_alert_transitions_total").series()
        )
        assert transitions[("svc-fast", "firing")].value == 1


class TestDefaultRules:
    def test_fast_and_slow_pair_per_slo(self):
        engine, _ = build_engine()
        rules = default_rules(engine)
        assert [r.name for r in rules] == ["svc-fast-burn", "svc-slow-burn"]
        fast, slow = rules
        assert fast.severity == "page"
        assert fast.burn_threshold == pytest.approx(14.4)
        assert (fast.long_window_s, fast.short_window_s) == (3600.0, 300.0)
        assert slow.severity == "ticket"
        assert slow.burn_threshold == 1.0

    def test_time_scale_shrinks_windows(self):
        engine, _ = build_engine()
        fast = default_rules(engine, time_scale=1.0 / 60.0)[0]
        assert fast.long_window_s == pytest.approx(60.0)
        assert fast.short_window_s == pytest.approx(5.0)

    def test_nonpositive_scale_rejected(self):
        engine, _ = build_engine()
        with pytest.raises(ValueError, match="time_scale"):
            default_rules(engine, time_scale=0.0)
