"""Tests for keyword extraction and cluster/environment contingency."""

import numpy as np
import pytest

from repro.analysis.environment import (
    ContingencyTable,
    contingency,
    environment_table,
    extract_environment,
    paris_share,
)
from repro.datagen.environments import EnvironmentType, TABLE1_COUNTS


class TestExtractEnvironment:
    @pytest.mark.parametrize("name,expected", [
        ("PARIS-METRO-0001-ANT01", EnvironmentType.METRO),
        ("PARIS-RER-0044-ANT02", EnvironmentType.METRO),
        ("LYON-GARE-0002-ANT01", EnvironmentType.TRAIN),
        ("NICE-AEROPORT-0001-ANT05", EnvironmentType.AIRPORT),
        ("PARIS-TERMINAL-0003-ANT01", EnvironmentType.AIRPORT),
        ("PARIS-BUREAU-0101-ANT01", EnvironmentType.WORKSPACE),
        ("LILLE-CAMPUS-ENTREPRISE-01-ANT1", EnvironmentType.WORKSPACE),
        ("DIJON-CENTRE-COMMERCIAL-07-ANT2", EnvironmentType.COMMERCIAL),
        ("PARIS-STADE-0001-ANT20", EnvironmentType.STADIUM),
        ("PARIS-ARENA-0002-ANT01", EnvironmentType.STADIUM),
        ("LYON-PARC-EXPOSITIONS-01-ANT1", EnvironmentType.EXPO),
        ("NANTES-HOTEL-0001-ANT01", EnvironmentType.HOTEL),
        ("PARIS-CHU-0001-ANT01", EnvironmentType.HOSPITAL),
        ("GRENOBLE-TUNNEL-0004-ANT01", EnvironmentType.TUNNEL),
        ("PARIS-MUSEE-0002-ANT01", EnvironmentType.PUBLIC),
    ])
    def test_known_keywords(self, name, expected):
        assert extract_environment(name) == expected

    def test_case_insensitive(self):
        assert extract_environment("paris-metro-0001") == EnvironmentType.METRO

    def test_unknown_returns_none(self):
        assert extract_environment("SOMEWHERE-ELSE-01") is None

    def test_empty_returns_none(self):
        assert extract_environment("") is None

    def test_keyword_must_be_token(self):
        # "METROPOLE" contains "METRO" as a prefix but is not the token.
        assert extract_environment("PARIS-METROPOLE-01") is None

    def test_all_generated_names_parse(self, small_dataset):
        for antenna in small_dataset.antennas:
            assert extract_environment(antenna.name) == antenna.env_type


class TestEnvironmentTable:
    def test_reproduces_table1_full_scale(self, full_dataset):
        table = environment_table(full_dataset.antenna_names())
        for env, expected in TABLE1_COUNTS.items():
            assert table[env] == expected

    def test_unrecognized_names_ignored(self):
        table = environment_table(["X-Y-Z", "PARIS-METRO-01"])
        assert table[EnvironmentType.METRO] == 1
        assert sum(table.values()) == 1


class TestContingency:
    @pytest.fixture()
    def toy(self):
        labels = [0, 0, 0, 1, 1, 2]
        envs = [
            EnvironmentType.METRO, EnvironmentType.METRO, EnvironmentType.TRAIN,
            EnvironmentType.STADIUM, EnvironmentType.STADIUM,
            EnvironmentType.WORKSPACE,
        ]
        return contingency(labels, envs)

    def test_counts(self, toy):
        assert toy.counts.sum() == 6
        metro_col = toy.environments.index(EnvironmentType.METRO)
        assert toy.counts[0, metro_col] == 2

    def test_cluster_composition_rows_sum_to_one(self, toy):
        comp = toy.cluster_composition()
        np.testing.assert_allclose(comp.sum(axis=1), 1.0)

    def test_environment_distribution_columns(self, toy):
        dist = toy.environment_distribution()
        stadium_col = toy.environments.index(EnvironmentType.STADIUM)
        assert dist[:, stadium_col].sum() == pytest.approx(1.0)

    def test_composition_of(self, toy):
        comp = toy.composition_of(0)
        assert comp[EnvironmentType.METRO] == pytest.approx(2 / 3)
        assert comp[EnvironmentType.TRAIN] == pytest.approx(1 / 3)

    def test_distribution_of(self, toy):
        dist = toy.distribution_of(EnvironmentType.STADIUM)
        assert dist[1] == pytest.approx(1.0)
        assert dist[0] == 0.0

    def test_sankey_flows_sorted(self, toy):
        flows = toy.sankey_flows()
        counts = [f[2] for f in flows]
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == 6

    def test_dominant_environment(self, toy):
        assert toy.dominant_environment(0) == EnvironmentType.METRO
        assert toy.dominant_environment(1) == EnvironmentType.STADIUM

    def test_unknown_cluster_raises(self, toy):
        with pytest.raises(KeyError, match="unknown cluster"):
            toy.composition_of(9)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            contingency([0, 1], [EnvironmentType.METRO])


class TestParisShare:
    def test_shares(self):
        labels = [0, 0, 1, 1]
        mask = [True, True, True, False]
        shares = paris_share(labels, mask)
        assert shares[0] == 1.0
        assert shares[1] == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            paris_share([0, 1], [True])
