"""Tests for the serving-side metrics: reservoir, counters, export."""

import json

import pytest

from repro.serve.metrics import (
    LatencyReservoir,
    ServeMetrics,
    merge_batch_histograms,
)


class TestLatencyReservoir:
    def test_percentiles_exact_on_small_sample(self):
        reservoir = LatencyReservoir(capacity=100)
        for value in [0.010, 0.020, 0.030, 0.040, 0.050]:
            reservoir.observe(value)
        assert reservoir.percentile(0) == pytest.approx(0.010)
        assert reservoir.percentile(50) == pytest.approx(0.030)
        assert reservoir.percentile(100) == pytest.approx(0.050)
        assert reservoir.percentile(25) == pytest.approx(0.020)

    def test_empty_reservoir_reports_zero(self):
        assert LatencyReservoir().percentile(95) == 0.0

    def test_capacity_is_bounded_and_sample_stays_in_range(self):
        reservoir = LatencyReservoir(capacity=32)
        for index in range(10_000):
            reservoir.observe(index / 10_000)
        assert reservoir.n_seen == 10_000
        assert len(reservoir._samples) == 32
        p50 = reservoir.percentile(50)
        # A uniform reservoir over uniform data should estimate the median
        # loosely; mostly this guards against systematic bias.
        assert 0.2 < p50 < 0.8

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0)
        with pytest.raises(ValueError):
            LatencyReservoir().percentile(101)

    def test_quantiles_ms_keys(self):
        reservoir = LatencyReservoir()
        reservoir.observe(0.002)
        quantiles = reservoir.quantiles_ms()
        assert set(quantiles) == {"p50_ms", "p95_ms", "p99_ms"}
        assert quantiles["p50_ms"] == pytest.approx(2.0)


class TestServeMetrics:
    def test_counters_and_requests(self):
        metrics = ServeMetrics()
        metrics.observe_request(0.001, n_vectors=3)
        metrics.observe_request(0.002, n_vectors=1)
        metrics.incr("cache_hits", 2)
        metrics.incr("cache_misses", 2)
        assert metrics.count("requests") == 2
        assert metrics.count("vectors_classified") == 4
        assert metrics.cache_hit_rate() == pytest.approx(0.5)

    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            ServeMetrics().incr("nope")

    def test_cache_hit_rate_none_before_lookups(self):
        assert ServeMetrics().cache_hit_rate() is None

    def test_batch_histogram_and_mean(self):
        metrics = ServeMetrics()
        metrics.observe_batch(4)
        metrics.observe_batch(4)
        metrics.observe_batch(16)
        assert metrics.batch_size_histogram() == {4: 2, 16: 1}
        assert metrics.mean_batch_size() == pytest.approx(8.0)

    def test_qps_zero_until_two_requests(self):
        metrics = ServeMetrics()
        assert metrics.qps() == 0.0
        metrics.observe_request(0.001)
        assert metrics.qps() == 0.0

    def test_to_dict_is_json_serializable(self):
        metrics = ServeMetrics()
        metrics.observe_request(0.001, n_vectors=2)
        metrics.observe_batch(2)
        snapshot = metrics.to_dict()
        text = json.dumps(snapshot)
        assert "counters" in snapshot and "derived" in snapshot
        assert snapshot["counters"]["requests"] == 1
        assert snapshot["batch_size_histogram"] == {"2": 1}
        assert json.loads(text)["derived"]["p50_ms"] == pytest.approx(1.0)

    def test_to_dict_snapshot_ts_is_monotonic(self):
        metrics = ServeMetrics()
        first = metrics.to_dict()["snapshot_ts"]
        second = metrics.to_dict()["snapshot_ts"]
        assert isinstance(first, float)
        assert second >= first

    def test_summary_mentions_key_lines(self):
        metrics = ServeMetrics()
        metrics.observe_request(0.001)
        text = metrics.summary()
        assert "requests served" in text
        assert "cache hit rate:    n/a" in text
        assert "p95" in text


def test_merge_batch_histograms():
    merged = merge_batch_histograms([{1: 2, 8: 1}, {8: 3}, {}])
    assert merged == {1: 2, 8: 4}
