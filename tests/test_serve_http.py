"""End-to-end tests of the JSON HTTP endpoint over a live server."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (
    HttpServeClient,
    ProfileService,
    ServeHTTPServer,
    make_server,
)
from tests.conftest import build_frozen_profile


@pytest.fixture(scope="module")
def frozen_and_totals():
    return build_frozen_profile()


@pytest.fixture()
def live_server(frozen_and_totals):
    frozen, _ = frozen_and_totals
    service = ProfileService(frozen, max_batch=16, n_workers=2)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", frozen
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(5.0)


def _post(base_url, path, payload):
    request = urllib.request.Request(
        f"{base_url}{path}",
        data=json.dumps(payload).encode("utf-8") if payload is not None
        else b"not json",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10.0) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestRoutes:
    def test_healthz(self, live_server):
        base_url, _ = live_server
        client = HttpServeClient(base_url)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["profile_version"] == 1

    def test_classify_vectors(self, live_server):
        base_url, frozen = live_server
        client = HttpServeClient(base_url)
        answer = client.classify(frozen.features[:5])
        expected = [int(label) for label in frozen.vote(frozen.features[:5])]
        assert answer["labels"] == expected
        assert answer["version"] == 1

    def test_classify_volumes(self, live_server, frozen_and_totals):
        base_url, frozen = live_server
        _, totals = frozen_and_totals
        client = HttpServeClient(base_url)
        answer = client.classify_volumes(totals[:4])
        expected = [
            int(label)
            for label in frozen.vote(frozen.rsca_of_volumes(totals[:4]))
        ]
        assert answer["labels"] == expected

    def test_classify_caches_repeats(self, live_server):
        base_url, frozen = live_server
        client = HttpServeClient(base_url)
        client.classify(frozen.features[:3])
        answer = client.classify(frozen.features[:3])
        assert answer["cached"] == 3

    def test_clusters(self, live_server):
        base_url, frozen = live_server
        summary = HttpServeClient(base_url).clusters()
        assert summary["n_clusters"] == frozen.n_clusters
        assert len(summary["clusters"]) == frozen.n_clusters

    def test_metrics(self, live_server):
        base_url, frozen = live_server
        client = HttpServeClient(base_url)
        client.classify(frozen.features[:2])
        snapshot = client.metrics()
        assert snapshot["counters"]["requests"] >= 1
        assert snapshot["profile_version"] == 1


class TestErrorMapping:
    def test_unknown_path_404(self, live_server):
        base_url, _ = live_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base_url}/nope", timeout=10.0)
        assert excinfo.value.code == 404

    def test_invalid_json_400(self, live_server):
        base_url, _ = live_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base_url, "/classify", None)
        assert excinfo.value.code == 400

    def test_missing_keys_400(self, live_server):
        base_url, _ = live_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base_url, "/classify", {})
        assert excinfo.value.code == 400

    def test_both_keys_400(self, live_server):
        base_url, _ = live_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base_url, "/classify", {"vectors": [[0.0]],
                                          "volumes": [[1.0]]})
        assert excinfo.value.code == 400

    def test_wrong_width_400(self, live_server):
        base_url, _ = live_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base_url, "/classify", {"vectors": [[0.0, 0.1]]})
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert "columns" in body["error"]

    def test_no_profile_503(self):
        service = ProfileService()  # nothing loaded
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"http://{host}:{port}", "/classify",
                      {"vectors": [[0.0] * 12]})
            assert excinfo.value.code == 503
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(5.0)

    def test_http_client_raises_runtime_error(self, live_server):
        base_url, _ = live_server
        client = HttpServeClient(base_url)
        with pytest.raises(RuntimeError, match="HTTP 400"):
            client.classify([[0.0, 0.1]])


class TestObservability:
    def test_metrics_is_prometheus_text(self, live_server):
        base_url, frozen = live_server
        client = HttpServeClient(base_url)
        client.classify(frozen.features[:3])
        with urllib.request.urlopen(f"{base_url}/metrics",
                                    timeout=10.0) as response:
            assert response.status == 200
            content_type = response.headers["Content-Type"]
            text = response.read().decode("utf-8")
        assert content_type.startswith("text/plain")
        # Required series: qps, latency, cache, shed.
        assert "# TYPE repro_serve_qps gauge" in text
        assert "repro_serve_request_latency_seconds_bucket" in text
        assert 'repro_serve_latency_ms{quantile="p95"}' in text
        assert "repro_serve_cache_hits_total" in text
        assert "repro_serve_shed_requests_total" in text
        assert "repro_serve_requests_total" in text
        # Every exposition line parses as `name[{labels}] value`.
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            float(line.rsplit(" ", 1)[1])

    def test_metrics_text_via_client(self, live_server):
        base_url, _ = live_server
        text = HttpServeClient(base_url).metrics_text()
        assert "repro_serve_requests_total" in text

    def test_unexpected_exception_returns_structured_500(self, live_server,
                                                         monkeypatch):
        base_url, _ = live_server

        def explode(self):
            raise ZeroDivisionError("instrumented failure")

        monkeypatch.setattr(ProfileService, "cluster_summaries", explode)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base_url}/clusters", timeout=10.0)
        assert excinfo.value.code == 500
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert body["error"] == "internal server error"
        assert body["error_type"] == "ZeroDivisionError"
        assert "instrumented failure" in body["detail"]
        assert body["request_id"].startswith("req-")

    def test_500_increments_error_counter(self, live_server, monkeypatch):
        base_url, _ = live_server

        def explode(self):
            raise KeyError("boom")

        monkeypatch.setattr(ProfileService, "metrics_snapshot", explode)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base_url}/metrics.json", timeout=10.0)
        assert excinfo.value.code == 500
        monkeypatch.undo()
        snapshot = HttpServeClient(base_url).metrics()
        assert snapshot["counters"]["errors"] >= 1
