"""Tests for longitudinal drift comparison."""

import numpy as np
import pytest

from repro.analysis.drift import compare_partitions
from repro.core.cluster import AgglomerativeClustering
from repro.core.rca import rsca


def toy_periods(rng, drift=0.0, extra_cluster=False):
    """Two periods over the same 60 antennas with controllable drift."""
    centers = 6.0 * np.eye(3, 5)
    xa = np.vstack([
        center + rng.normal(scale=0.3, size=(20, 5)) for center in centers
    ])
    labels = np.repeat(np.arange(3), 20)
    xb = xa + rng.normal(scale=0.05, size=xa.shape)
    xb[labels == 1, 0] += drift  # cluster 1 drifts along feature 0
    labels_b = labels.copy()
    if extra_cluster:
        # Twenty antennas of cluster 2 jump to a brand-new profile.
        xb[40:60] = -6.0 * np.ones(5) + rng.normal(scale=0.3, size=(20, 5))
        labels_b = labels.copy()
        labels_b[40:60] = 3
    return xa, labels, xb, labels_b


NAMES = [f"svc{j}" for j in range(5)]


class TestComparePartitions:
    def test_stable_periods_match_fully(self, rng):
        xa, la, xb, lb = toy_periods(rng)
        report = compare_partitions(xa, la, xb, lb, NAMES)
        assert len(report.matches) == 3
        assert not report.emerging
        assert not report.vanished
        assert report.mean_centroid_drift < 0.1
        for match in report.matches:
            assert match.cluster_a == match.cluster_b
            assert match.membership_overlap == 1.0

    def test_drift_attributed_to_right_service(self, rng):
        xa, la, xb, lb = toy_periods(rng, drift=0.8)
        report = compare_partitions(xa, la, xb, lb, NAMES)
        match = report.match_for(1)
        assert match is not None
        top_service, delta = match.top_drifting_services[0]
        assert top_service == "svc0"
        assert delta == pytest.approx(0.8, abs=0.1)

    def test_emerging_cluster_detected(self, rng):
        xa, la, xb, lb = toy_periods(rng, extra_cluster=True)
        report = compare_partitions(xa, la, xb, lb, NAMES,
                                    match_threshold=2.0)
        assert 3 in report.emerging
        assert 2 in report.vanished

    def test_summary_text(self, rng):
        xa, la, xb, lb = toy_periods(rng, drift=0.5)
        report = compare_partitions(xa, la, xb, lb, NAMES)
        text = report.summary()
        assert "matched clusters" in text
        assert "A:1 <-> B:1" in text

    def test_validation(self, rng):
        xa, la, xb, lb = toy_periods(rng)
        with pytest.raises(ValueError, match="share a shape"):
            compare_partitions(xa, la, xb[:-1], lb[:-1], NAMES)
        with pytest.raises(ValueError, match="service names"):
            compare_partitions(xa, la, xb, lb, NAMES[:-1])
        with pytest.raises(ValueError, match="match_threshold"):
            compare_partitions(xa, la, xb, lb, NAMES, match_threshold=0.0)

    def test_on_generated_half_periods(self, small_dataset):
        """The two study halves yield matched, low-drift profiles."""
        n = small_dataset.calendar.n_hours
        first = small_dataset.model.window_totals(slice(0, n // 2))
        second = small_dataset.model.window_totals(slice(n // 2, n))
        fa, fb = rsca(first), rsca(second)
        la = AgglomerativeClustering(n_clusters=9).fit_predict(fa)
        lb = AgglomerativeClustering(n_clusters=9).fit_predict(fb)
        report = compare_partitions(fa, la, fb, lb,
                                    small_dataset.service_names)
        assert len(report.matches) == 9
        assert not report.emerging and not report.vanished
        assert report.mean_centroid_drift < 0.5
        overlaps = [m.membership_overlap for m in report.matches]
        assert min(overlaps) > 0.8
