"""Tests for the from-scratch spectral clustering."""

import numpy as np
import pytest

from repro.core.compare import adjusted_rand_index
from repro.core.spectral import SpectralClustering


@pytest.fixture()
def blobs(rng):
    centers = 8.0 * np.vstack([np.eye(3), -np.eye(3)])[:4, :3]
    x = np.vstack([
        center + rng.normal(scale=0.4, size=(25, 3)) for center in centers
    ])
    labels = np.repeat(np.arange(4), 25)
    return x, labels


@pytest.fixture()
def rings(rng):
    """Two concentric rings: separable by spectral, not by k-means."""
    angles = rng.uniform(0, 2 * np.pi, size=120)
    inner = np.c_[np.cos(angles[:60]), np.sin(angles[:60])]
    outer = 5.0 * np.c_[np.cos(angles[60:]), np.sin(angles[60:])]
    noise = rng.normal(scale=0.08, size=(120, 2))
    x = np.vstack([inner, outer]) + noise
    labels = np.repeat([0, 1], 60)
    return x, labels


class TestSpectralClustering:
    def test_recovers_blobs(self, blobs):
        x, truth = blobs
        labels = SpectralClustering(n_clusters=4, random_state=0).fit_predict(x)
        assert adjusted_rand_index(labels, truth) == pytest.approx(1.0)

    def test_separates_rings(self, rings):
        x, truth = rings
        spectral = SpectralClustering(n_clusters=2, n_neighbors=10,
                                      random_state=0).fit_predict(x)
        assert adjusted_rand_index(spectral, truth) > 0.95

    def test_kmeans_fails_on_rings(self, rings):
        from repro.core.compare import KMeans

        x, truth = rings
        kmeans = KMeans(n_clusters=2, random_state=0).fit_predict(x)
        assert adjusted_rand_index(kmeans, truth) < 0.3

    def test_dense_affinity_mode(self, blobs):
        x, truth = blobs
        labels = SpectralClustering(n_clusters=4, n_neighbors=None,
                                    random_state=0).fit_predict(x)
        assert adjusted_rand_index(labels, truth) > 0.95

    def test_explicit_gamma(self, blobs):
        x, truth = blobs
        labels = SpectralClustering(n_clusters=4, gamma=0.5,
                                    random_state=0).fit_predict(x)
        assert adjusted_rand_index(labels, truth) > 0.9

    def test_embedding_shape(self, blobs):
        x, _ = blobs
        model = SpectralClustering(n_clusters=4, random_state=0).fit(x)
        assert model.embedding_.shape == (x.shape[0], 4)

    def test_deterministic(self, blobs):
        x, _ = blobs
        a = SpectralClustering(n_clusters=4, random_state=3).fit_predict(x)
        b = SpectralClustering(n_clusters=4, random_state=3).fit_predict(x)
        np.testing.assert_array_equal(a, b)

    def test_recovers_archetypes_on_rsca(self, small_profile, small_dataset):
        labels = SpectralClustering(n_clusters=9,
                                    random_state=0).fit_predict(
            small_profile.features
        )
        ari = adjusted_rand_index(labels, small_dataset.archetypes())
        assert ari > 0.8

    def test_validation(self, blobs):
        x, _ = blobs
        with pytest.raises(ValueError, match="n_clusters"):
            SpectralClustering(n_clusters=1)
        with pytest.raises(ValueError, match="gamma"):
            SpectralClustering(gamma=0.0)
        with pytest.raises(ValueError, match="n_neighbors"):
            SpectralClustering(n_neighbors=0)
        with pytest.raises(ValueError, match="samples"):
            SpectralClustering(n_clusters=5).fit(x[:4])
