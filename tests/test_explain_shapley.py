"""Tests for exact Shapley enumeration (paper Eq. 4)."""

import numpy as np
import pytest

from repro.explain.shapley import (
    coalition_value_fn,
    exact_shapley,
    exact_tree_shapley,
    tree_conditional_expectation,
)
from repro.ml.tree import DecisionTreeClassifier


class TestCoalitionValue:
    def test_empty_coalition_is_background_mean(self, rng):
        background = rng.normal(size=(50, 3))
        model = lambda rows: rows[:, 0]
        value = coalition_value_fn(model, np.array([9.0, 0.0, 0.0]), background)
        assert value(()) == pytest.approx(background[:, 0].mean())

    def test_full_coalition_is_model_at_x(self, rng):
        background = rng.normal(size=(50, 3))
        model = lambda rows: rows[:, 0] + 2 * rows[:, 2]
        x = np.array([1.0, 5.0, -1.0])
        value = coalition_value_fn(model, x, background)
        assert value((0, 1, 2)) == pytest.approx(-1.0)

    def test_feature_count_mismatch(self, rng):
        with pytest.raises(ValueError, match="features"):
            coalition_value_fn(lambda r: r[:, 0], np.ones(4),
                               rng.normal(size=(5, 3)))


class TestExactShapley:
    def test_linear_model_recovers_coefficients(self, rng):
        # For f(x) = w.x the Shapley value of feature i is
        # w_i * (x_i - E[background_i]).
        weights = np.array([2.0, -1.0, 0.5])
        model = lambda rows: rows @ weights
        background = rng.normal(size=(100, 3))
        x = np.array([1.0, 2.0, 3.0])
        phi = exact_shapley(model, x, background)
        expected = weights * (x - background.mean(axis=0))
        np.testing.assert_allclose(phi, expected, atol=1e-9)

    def test_local_accuracy(self, rng):
        model = lambda rows: np.sin(rows[:, 0]) + rows[:, 1] * rows[:, 2]
        background = rng.normal(size=(30, 3))
        x = rng.normal(size=3)
        phi = exact_shapley(model, x, background)
        f_x = model(x[None, :])[0]
        base = model(background).mean()
        assert phi.sum() == pytest.approx(f_x - base, abs=1e-9)

    def test_symmetry(self, rng):
        # Features 0 and 1 enter symmetrically; equal inputs get equal phi.
        model = lambda rows: rows[:, 0] + rows[:, 1]
        background = np.zeros((10, 2))
        phi = exact_shapley(model, np.array([3.0, 3.0]), background)
        assert phi[0] == pytest.approx(phi[1])

    def test_dummy_feature_zero(self, rng):
        model = lambda rows: rows[:, 0] * 2.0
        background = rng.normal(size=(40, 3))
        phi = exact_shapley(model, np.array([1.0, 9.0, -9.0]), background)
        assert phi[1] == pytest.approx(0.0, abs=1e-9)
        assert phi[2] == pytest.approx(0.0, abs=1e-9)

    def test_too_many_features_guarded(self, rng):
        with pytest.raises(ValueError, match="enumeration"):
            exact_shapley(lambda r: r[:, 0], np.ones(20),
                          rng.normal(size=(5, 20)))


class TestTreeConditionalExpectation:
    @pytest.fixture()
    def fitted_tree(self, rng):
        x = rng.uniform(-1, 1, size=(200, 3))
        y = np.where(x[:, 0] > 0, 1, np.where(x[:, 1] > 0.3, 1, 0))
        return DecisionTreeClassifier(max_depth=4).fit(x, y), x

    def test_all_features_fixed_equals_prediction(self, fitted_tree):
        tree_model, x = fitted_tree
        for row in range(5):
            expected = tree_model.predict_proba(x[row:row + 1])[0, 1]
            value = tree_conditional_expectation(
                tree_model.tree_, x[row], [0, 1, 2], class_index=1
            )
            assert value == pytest.approx(expected)

    def test_no_features_fixed_equals_weighted_root(self, fitted_tree):
        tree_model, x = fitted_tree
        structure = tree_model.tree_
        leaves = np.flatnonzero(structure.children_left == -1)
        weights = structure.n_node_samples[leaves] / structure.n_node_samples[0]
        expected = float(weights @ structure.value[leaves, 1])
        value = tree_conditional_expectation(structure, x[0], [], class_index=1)
        assert value == pytest.approx(expected)

    def test_exact_tree_shapley_local_accuracy(self, fitted_tree):
        tree_model, x = fitted_tree
        phi = exact_tree_shapley(tree_model, x[0], class_index=1)
        full = tree_conditional_expectation(
            tree_model.tree_, x[0], [0, 1, 2], class_index=1
        )
        empty = tree_conditional_expectation(
            tree_model.tree_, x[0], [], class_index=1
        )
        assert phi.sum() == pytest.approx(full - empty, abs=1e-10)
