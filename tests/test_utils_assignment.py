"""Tests for the Hungarian algorithm and label alignment."""

from itertools import permutations

import numpy as np
import pytest

from repro.utils.assignment import align_labels, hungarian


def brute_force_min_cost(cost: np.ndarray) -> float:
    n_rows, n_cols = cost.shape
    best = np.inf
    if n_rows <= n_cols:
        for perm in permutations(range(n_cols), n_rows):
            best = min(best, sum(cost[i, j] for i, j in enumerate(perm)))
    else:
        for perm in permutations(range(n_rows), n_cols):
            best = min(best, sum(cost[i, j] for j, i in enumerate(perm)))
    return best


class TestHungarian:
    def test_identity(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        rows, cols = hungarian(cost)
        np.testing.assert_array_equal(rows, [0, 1])
        np.testing.assert_array_equal(cols, [0, 1])

    def test_swap(self):
        cost = np.array([[4.0, 1.0], [2.0, 8.0]])
        rows, cols = hungarian(cost)
        assert list(zip(rows.tolist(), cols.tolist())) == [(0, 1), (1, 0)]

    def test_square_matches_brute_force(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            cost = rng.random((5, 5))
            rows, cols = hungarian(cost)
            assert cost[rows, cols].sum() == pytest.approx(
                brute_force_min_cost(cost)
            )

    def test_wide_matches_brute_force(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            cost = rng.random((3, 6))
            rows, cols = hungarian(cost)
            assert rows.size == 3
            assert cost[rows, cols].sum() == pytest.approx(
                brute_force_min_cost(cost)
            )

    def test_tall_matches_brute_force(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            cost = rng.random((6, 3))
            rows, cols = hungarian(cost)
            assert cols.size == 3
            assert cost[rows, cols].sum() == pytest.approx(
                brute_force_min_cost(cost)
            )

    def test_assignment_is_injective(self):
        rng = np.random.default_rng(3)
        cost = rng.random((8, 8))
        rows, cols = hungarian(cost)
        assert len(set(rows.tolist())) == 8
        assert len(set(cols.tolist())) == 8

    def test_negative_costs_supported(self):
        cost = np.array([[-5.0, 0.0], [0.0, -5.0]])
        rows, cols = hungarian(cost)
        assert cost[rows, cols].sum() == pytest.approx(-10.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            hungarian(np.array([[np.nan, 1.0], [1.0, 0.0]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            hungarian(np.array([1.0, 2.0]))


class TestAlignLabels:
    def test_identity_alignment(self):
        labels = [0, 0, 1, 1, 2]
        mapping = align_labels(labels, labels)
        assert mapping == {0: 0, 1: 1, 2: 2}

    def test_permuted_alignment(self):
        reference = np.array([0, 0, 1, 1, 2, 2])
        predicted = np.array([2, 2, 0, 0, 1, 1])
        mapping = align_labels(predicted, reference)
        relabelled = np.array([mapping[p] for p in predicted])
        np.testing.assert_array_equal(relabelled, reference)

    def test_noisy_alignment_majority_wins(self):
        reference = np.array([0] * 10 + [1] * 10)
        predicted = np.array([5] * 9 + [7] + [7] * 10)
        mapping = align_labels(predicted, reference)
        assert mapping[5] == 0
        assert mapping[7] == 1

    def test_extra_predicted_labels_get_fresh_ids(self):
        reference = np.array([0, 0, 0, 1, 1, 1])
        predicted = np.array([0, 0, 1, 1, 2, 2])
        mapping = align_labels(predicted, reference)
        assert sorted(mapping) == [0, 1, 2]
        assert len(set(mapping.values())) == 3
        # The surplus label maps beyond the reference range.
        assert max(mapping.values()) == 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            align_labels([0, 1], [0, 1, 2])
