"""Tests for deterministic RNG derivation."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "a", 1) == derive_seed(0, "a", 1)

    def test_master_seed_changes_output(self):
        assert derive_seed(0, "a") != derive_seed(1, "a")

    def test_key_changes_output(self):
        assert derive_seed(0, "a") != derive_seed(0, "b")

    def test_key_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_int_and_str_keys_distinct_from_each_other(self):
        # "1" and 1 stringify identically by design; the path separator
        # prevents accidental collisions across *positions* instead.
        assert derive_seed(0, "x", 12) == derive_seed(0, "x", "12")
        assert derive_seed(0, "x1", 2) != derive_seed(0, "x", 12)

    def test_returns_64bit_int(self):
        value = derive_seed(0, "antenna", 42)
        assert isinstance(value, int)
        assert 0 <= value < 2**64

    def test_rejects_float_master_seed(self):
        with pytest.raises(TypeError, match="master_seed"):
            derive_seed(0.5, "a")

    def test_rejects_float_key(self):
        with pytest.raises(TypeError, match="keys"):
            derive_seed(0, 1.5)

    def test_numpy_integer_keys_accepted(self):
        assert derive_seed(0, np.int64(3)) == derive_seed(0, 3)


class TestDeriveRng:
    def test_same_path_same_stream(self):
        a = derive_rng(0, "hourly", 5).random(8)
        b = derive_rng(0, "hourly", 5).random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_paths_different_streams(self):
        a = derive_rng(0, "hourly", 5).random(8)
        b = derive_rng(0, "hourly", 6).random(8)
        assert not np.array_equal(a, b)

    def test_returns_generator(self):
        assert isinstance(derive_rng(0, "x"), np.random.Generator)
