"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.compare import (
    KMeans,
    adjusted_rand_index,
    cluster_purity,
    normalized_mutual_information,
)
from repro.core.pca import PCA
from repro.forecast.models import (
    SeasonalNaive,
    WeeklyProfile,
    normalized_mae,
)

label_vectors = st.lists(st.integers(0, 4), min_size=2, max_size=50)


@st.composite
def label_pairs(draw):
    """Two equal-length label vectors (avoids assume-based filtering)."""
    size = draw(st.integers(2, 40))
    a = draw(st.lists(st.integers(0, 4), min_size=size, max_size=size))
    b = draw(st.lists(st.integers(0, 4), min_size=size, max_size=size))
    return a, b

small_matrices = arrays(
    dtype=float,
    shape=st.tuples(st.integers(4, 20), st.integers(2, 5)),
    elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
)

positive_series = arrays(
    dtype=float,
    shape=st.integers(2 * 168, 3 * 168),
    elements=st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
)


class TestAgreementMetricProperties:
    @given(label_vectors)
    @settings(max_examples=50, deadline=None)
    def test_ari_reflexive(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @given(label_pairs())
    @settings(max_examples=50, deadline=None)
    def test_ari_symmetric(self, pair):
        a, b = pair
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )

    @given(label_vectors)
    @settings(max_examples=50, deadline=None)
    def test_nmi_reflexive_and_bounded(self, labels):
        value = normalized_mutual_information(labels, labels)
        assert value == pytest.approx(1.0)

    @given(label_pairs())
    @settings(max_examples=50, deadline=None)
    def test_nmi_symmetric(self, pair):
        a, b = pair
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a)
        )

    @given(label_pairs())
    @settings(max_examples=50, deadline=None)
    def test_purity_bounds(self, pair):
        predicted, reference = pair
        value = cluster_purity(predicted, reference)
        assert 0.0 < value <= 1.0

    @given(label_vectors, st.permutations(list(range(5))))
    @settings(max_examples=50, deadline=None)
    def test_ari_label_permutation_invariant(self, labels, perm):
        permuted = [perm[l] for l in labels]
        assert adjusted_rand_index(labels, permuted) == pytest.approx(1.0)


class TestKMeansProperties:
    @given(small_matrices, st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_inertia_nonnegative_and_labels_valid(self, x, k):
        assume(np.unique(x, axis=0).shape[0] >= k)
        model = KMeans(n_clusters=k, n_init=2, max_iter=50,
                       random_state=0).fit(x)
        assert model.inertia_ >= 0
        assert set(np.unique(model.labels_)) <= set(range(k))

    @given(small_matrices)
    @settings(max_examples=25, deadline=None)
    def test_single_cluster_inertia_is_total_variance(self, x):
        model = KMeans(n_clusters=1, n_init=1, random_state=0).fit(x)
        centered = x - x.mean(axis=0)
        assert model.inertia_ == pytest.approx(
            float((centered ** 2).sum()), rel=1e-6, abs=1e-6
        )

    @given(small_matrices, st.integers(2, 3))
    @settings(max_examples=25, deadline=None)
    def test_predict_consistent_with_fit(self, x, k):
        assume(np.unique(x, axis=0).shape[0] >= k)
        model = KMeans(n_clusters=k, n_init=2, random_state=0).fit(x)
        np.testing.assert_array_equal(model.predict(x), model.labels_)


class TestPCAProperties:
    @given(small_matrices)
    @settings(max_examples=25, deadline=None)
    def test_transform_preserves_total_variance(self, x):
        assume(x.shape[0] >= 3)
        assume(np.linalg.matrix_rank(x - x.mean(axis=0)) >= 1)
        pca = PCA().fit(x)
        projected = pca.transform(x)
        original_var = np.var(x - x.mean(axis=0), axis=0, ddof=1).sum()
        projected_var = np.var(projected, axis=0, ddof=1).sum()
        assert projected_var == pytest.approx(original_var, rel=1e-6)

    @given(small_matrices)
    @settings(max_examples=25, deadline=None)
    def test_full_roundtrip(self, x):
        assume(x.shape[0] >= 3)
        pca = PCA().fit(x)
        recovered = pca.inverse_transform(pca.transform(x))
        np.testing.assert_allclose(recovered, x, atol=1e-6)

    @given(small_matrices)
    @settings(max_examples=25, deadline=None)
    def test_ratios_sorted_and_normalized(self, x):
        assume(x.shape[0] >= 3)
        pca = PCA().fit(x)
        ratios = pca.explained_variance_ratio_
        assert np.all(np.diff(ratios) <= 1e-9)
        total = ratios.sum()
        assert total == pytest.approx(1.0) or total == pytest.approx(0.0)


class TestForecastProperties:
    @given(positive_series)
    @settings(max_examples=25, deadline=None)
    def test_seasonal_naive_repeats_last_season(self, series):
        model = SeasonalNaive(season=168).fit(series)
        forecast = model.forecast(168)
        np.testing.assert_array_equal(forecast, series[-168:])

    @given(positive_series)
    @settings(max_examples=25, deadline=None)
    def test_weekly_profile_nonnegative(self, series):
        forecast = WeeklyProfile().fit(series).forecast(168)
        assert np.all(forecast >= 0)

    @given(positive_series)
    @settings(max_examples=25, deadline=None)
    def test_weekly_profile_level_matches_recent(self, series):
        model = WeeklyProfile().fit(series)
        forecast = model.forecast(168)
        recent = series[-168:].mean()
        # The forecast level tracks the recent level (by construction).
        assert forecast.mean() == pytest.approx(recent, rel=1e-6)

    @given(positive_series)
    @settings(max_examples=25, deadline=None)
    def test_nmae_zero_iff_exact(self, series):
        assert normalized_mae(series, series) == 0.0


class TestDriftProperties:
    @given(small_matrices, st.integers(2, 3))
    @settings(max_examples=20, deadline=None)
    def test_self_comparison_has_no_drift(self, x, k):
        from repro.analysis.drift import compare_partitions

        assume(np.unique(x, axis=0).shape[0] >= k + 1)
        from repro.core.compare import KMeans

        labels = KMeans(n_clusters=k, n_init=2, random_state=0).fit_predict(x)
        assume(np.unique(labels).size == k)
        names = [f"f{j}" for j in range(x.shape[1])]
        report = compare_partitions(x, labels, x, labels, names,
                                    match_threshold=1e-6)
        assert len(report.matches) == k
        assert not report.emerging and not report.vanished
        assert report.mean_centroid_drift == pytest.approx(0.0, abs=1e-9)
        assert all(m.membership_overlap == 1.0 for m in report.matches)


long_positive_series = arrays(
    dtype=float,
    shape=st.integers(4 * 168, 5 * 168),
    elements=st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
)


class TestIntervalProperties:
    @given(long_positive_series, st.floats(min_value=0.5, max_value=0.95))
    @settings(max_examples=15, deadline=None)
    def test_interval_brackets_point(self, series, coverage):
        from repro.forecast.intervals import IntervalWeeklyProfile

        forecast = IntervalWeeklyProfile(
            coverage=coverage, calibration_weeks=1
        ).fit(series).forecast(168)
        assert np.all(forecast.lower <= forecast.point + 1e-9)
        assert np.all(forecast.point <= forecast.upper + 1e-9)
        assert np.all(forecast.lower >= 0)
