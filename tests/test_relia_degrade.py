"""Degradation wrapper: reordering, dedup, gaps, quarantine, fallthrough."""

import random
from dataclasses import dataclass, field
from typing import List

import numpy as np
import pytest

from repro.obs.registry import MetricsRegistry, get_registry, set_registry
from repro.relia import (
    ResilientStreamingProfiler,
    RetryPolicy,
    StreamDegradePolicy,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = get_registry()
    registry = MetricsRegistry()
    set_registry(registry)
    yield registry
    set_registry(previous)


@dataclass(frozen=True)
class FakeBatch:
    hour: np.datetime64
    n_rows: int = 3


@dataclass
class FakeProfiler:
    """Strict-order profiler double recording every folded hour."""

    folded: List[str] = field(default_factory=list)
    fail_hours: dict = field(default_factory=dict)  # hour -> failures left

    def ingest(self, batch):
        hour = str(batch.hour)
        remaining = self.fail_hours.get(hour, 0)
        if remaining:
            self.fail_hours[hour] = remaining - 1
            raise OSError(f"feed glitch at {hour}")
        if self.folded and hour <= self.folded[-1]:
            raise ValueError(f"hour {hour} not after {self.folded[-1]}")
        self.folded.append(hour)
        return hour

    def summary(self):
        return f"folded {len(self.folded)}"


def batch(hour: str) -> FakeBatch:
    return FakeBatch(hour=np.datetime64(hour, "h"))


HOURS = [f"2023-01-09T{h:02d}" for h in range(8)]

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)


def make_wrapper(inner=None, **policy_kwargs):
    policy_kwargs.setdefault("retry", FAST_RETRY)
    inner = inner if inner is not None else FakeProfiler()
    wrapper = ResilientStreamingProfiler(
        inner, StreamDegradePolicy(**policy_kwargs), rng=random.Random(0)
    )
    return wrapper, inner


def test_policy_validates_parameters():
    with pytest.raises(ValueError):
        StreamDegradePolicy(reorder_window=0)
    with pytest.raises(ValueError):
        StreamDegradePolicy(max_quarantine=0)


def test_in_order_stream_folds_in_order():
    wrapper, inner = make_wrapper(reorder_window=3)
    for hour in HOURS:
        wrapper.ingest(batch(hour))
    wrapper.flush()
    assert inner.folded == HOURS


def test_window_one_disables_reordering():
    wrapper, inner = make_wrapper(reorder_window=1)
    results = wrapper.ingest(batch(HOURS[0]))
    assert results == [HOURS[0]]  # released immediately
    assert wrapper.pending_count == 0
    assert inner.folded == [HOURS[0]]


def test_reorder_window_repairs_one_step_delay():
    wrapper, inner = make_wrapper(reorder_window=3)
    arrival = [HOURS[0], HOURS[2], HOURS[1], HOURS[3], HOURS[5],
               HOURS[4], HOURS[6], HOURS[7]]
    for hour in arrival:
        wrapper.ingest(batch(hour))
    wrapper.flush()
    assert inner.folded == HOURS
    counter = get_registry().get("repro_reordered_batches_total")
    assert counter.value == 2


def test_duplicate_hours_are_dropped():
    wrapper, inner = make_wrapper(reorder_window=1)
    for hour in [HOURS[0], HOURS[1], HOURS[1], HOURS[2]]:
        wrapper.ingest(batch(hour))
    assert inner.folded == HOURS[:3]
    counter = get_registry().get("repro_duplicate_hours_total")
    assert counter.value == 1


def test_gaps_are_counted_and_survived():
    wrapper, inner = make_wrapper(reorder_window=1)
    for hour in [HOURS[0], HOURS[1], HOURS[5], HOURS[6]]:
        wrapper.ingest(batch(hour))
    assert inner.folded == [HOURS[0], HOURS[1], HOURS[5], HOURS[6]]
    counter = get_registry().get("repro_stream_gap_hours_total")
    assert counter.value == 3  # hours 2, 3, 4 never arrived


def test_transient_failure_is_retried_not_quarantined():
    inner = FakeProfiler(fail_hours={HOURS[1]: 2})
    wrapper, _ = make_wrapper(inner=inner, reorder_window=1)
    for hour in HOURS[:3]:
        wrapper.ingest(batch(hour))
    assert inner.folded == HOURS[:3]
    assert wrapper.quarantine == []
    retries = get_registry().get("repro_retries_total")
    assert retries.labels(site="stream.ingest").value == 2


def test_poisoned_batch_is_quarantined_and_stream_continues():
    inner = FakeProfiler(fail_hours={HOURS[1]: 99})
    wrapper, _ = make_wrapper(inner=inner, reorder_window=1)
    results = []
    for hour in HOURS[:4]:
        results.extend(wrapper.ingest(batch(hour)))
    assert inner.folded == [HOURS[0], HOURS[2], HOURS[3]]
    assert results == [HOURS[0], None, HOURS[2], HOURS[3]]
    held = wrapper.quarantine
    assert len(held) == 1
    assert held[0].error_type == "OSError"
    assert held[0].attempts == 3
    assert wrapper.quarantined_hours() == [np.datetime64(HOURS[1], "h")]
    counter = get_registry().get("repro_quarantined_batches_total")
    assert counter.value == 1


def test_quarantine_is_bounded():
    inner = FakeProfiler(fail_hours={hour: 99 for hour in HOURS})
    wrapper, _ = make_wrapper(inner=inner, reorder_window=1,
                              max_quarantine=3)
    for hour in HOURS:
        wrapper.ingest(batch(hour))
    assert len(wrapper.quarantine) == 3  # oldest evicted
    assert wrapper.quarantined_hours() == [
        np.datetime64(hour, "h") for hour in HOURS[-3:]
    ]
    counter = get_registry().get("repro_quarantined_batches_total")
    assert counter.value == len(HOURS)  # counts persist past eviction


def test_attribute_access_falls_through_to_inner():
    wrapper, inner = make_wrapper(reorder_window=1)
    wrapper.ingest(batch(HOURS[0]))
    assert wrapper.summary() == "folded 1"
    assert wrapper.profiler is inner


def test_context_manager_flushes_on_clean_exit():
    wrapper, inner = make_wrapper(reorder_window=4)
    with wrapper:
        for hour in HOURS[:3]:
            wrapper.ingest(batch(hour))
        assert inner.folded == []  # window still filling
    assert inner.folded == HOURS[:3]


def test_context_manager_skips_flush_on_error():
    wrapper, inner = make_wrapper(reorder_window=4)
    with pytest.raises(KeyError):
        with wrapper:
            wrapper.ingest(batch(HOURS[0]))
            raise KeyError("boom")
    assert inner.folded == []
