"""Metrics TSDB: SeriesRing mechanics, scrape ingestion, and the mini
query language behind ``GET /query``."""

import math

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.tsdb import MetricsTSDB, QueryError, SeriesRing, sparkline


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


class TestSeriesRing:
    def test_capacity_floor(self):
        with pytest.raises(ValueError, match="capacity"):
            SeriesRing(capacity=1)

    def test_append_evicts_oldest(self):
        ring = SeriesRing(capacity=3)
        for i in range(5):
            ring.append(float(i), float(i * 10))
        assert len(ring) == 3
        assert ring.samples() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]

    def test_backwards_clock_clamped(self):
        ring = SeriesRing(capacity=4)
        ring.append(10.0, 1.0)
        used = ring.append(5.0, 2.0)
        assert used == 10.0
        assert [t for t, _ in ring.samples()] == [10.0, 10.0]

    def test_latest_and_empty(self):
        ring = SeriesRing(capacity=2)
        assert ring.latest() is None
        assert ring.samples() == []
        assert ring.bounds(10.0) == (None, None)
        ring.append(1.0, 7.0)
        assert ring.latest() == (1.0, 7.0)

    def test_bounds_anchor_and_end(self):
        ring = SeriesRing(capacity=10)
        for t in (0.0, 10.0, 20.0, 30.0):
            ring.append(t, t)
        anchor, end = ring.bounds(15.0, now=30.0)
        # latest sample at or before now - 15 = 15 → (10.0, 10.0)
        assert anchor == (10.0, 10.0)
        assert end == (30.0, 30.0)

    def test_bounds_short_history_uses_oldest(self):
        ring = SeriesRing(capacity=10)
        ring.append(20.0, 5.0)
        ring.append(25.0, 8.0)
        anchor, end = ring.bounds(100.0, now=25.0)
        assert anchor == (20.0, 5.0)
        assert end == (25.0, 8.0)

    def test_bounds_everything_in_future(self):
        ring = SeriesRing(capacity=4)
        ring.append(50.0, 1.0)
        assert ring.bounds(10.0, now=40.0) == (None, None)

    def test_delta(self):
        ring = SeriesRing(capacity=10)
        ring.append(0.0, 100.0)
        ring.append(30.0, 130.0)
        assert ring.delta(60.0, now=30.0) == 30.0
        assert SeriesRing(capacity=2).delta(60.0) == 0.0

    def test_increase_monotonic(self):
        ring = SeriesRing(capacity=10)
        for t, v in [(0.0, 0.0), (10.0, 4.0), (20.0, 9.0)]:
            ring.append(t, v)
        total, elapsed = ring.increase(60.0, now=20.0)
        assert total == 9.0
        assert elapsed == 20.0

    def test_increase_counter_reset(self):
        # Counter climbs to 10, process restarts (drops to 2), climbs to 5:
        # visible increase = 10 + 2 + 3 = 15, not 5 - 0.
        ring = SeriesRing(capacity=10)
        for t, v in [(0.0, 0.0), (10.0, 10.0), (20.0, 2.0), (30.0, 5.0)]:
            ring.append(t, v)
        total, elapsed = ring.increase(60.0, now=30.0)
        assert total == 15.0
        assert elapsed == 30.0

    def test_increase_needs_two_samples(self):
        ring = SeriesRing(capacity=4)
        ring.append(0.0, 3.0)
        assert ring.increase(60.0, now=0.0) == (0.0, 0.0)


@pytest.fixture()
def rig():
    registry = MetricsRegistry()
    clock = FakeClock()
    tsdb = MetricsTSDB(registry, capacity=64, min_interval_s=0.25,
                       clock=clock)
    return registry, clock, tsdb


class TestIngestion:
    def test_record_snapshots_counters_and_gauges(self, rig):
        registry, clock, tsdb = rig
        requests = registry.counter("demo_requests_total", "demo")
        depth = registry.gauge("demo_depth", "demo")
        requests.inc(3)
        depth.set(7.0)
        touched = tsdb.record()
        assert touched == 2
        assert tsdb.latest("demo_requests_total") == 3.0
        assert tsdb.latest("demo_depth") == 7.0

    def test_min_interval_coalesces_scrape_storms(self, rig):
        registry, clock, tsdb = rig
        registry.counter("demo_total", "demo").inc()
        assert tsdb.record() > 0
        clock.advance(0.1)  # within min_interval_s=0.25
        assert tsdb.record() == 0
        clock.advance(0.2)
        assert tsdb.record() > 0

    def test_explicit_now_bypasses_limiter(self, rig):
        registry, _, tsdb = rig
        registry.counter("demo_total", "demo").inc()
        assert tsdb.record(now=1.0) > 0
        assert tsdb.record(now=1.01) > 0

    def test_histograms_fan_out(self, rig):
        registry, _, tsdb = rig
        hist = registry.histogram("demo_seconds", "demo",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        tsdb.record(now=1.0)
        names = tsdb.series_names()
        assert "demo_seconds_count" in names
        assert "demo_seconds_sum" in names
        assert "demo_seconds_bucket" in names
        buckets = tsdb.select("demo_seconds_bucket")
        les = sorted(labels["le"] for labels, _ in buckets)
        assert les == ["+Inf", "0.1", "1"]

    def test_labeled_series_kept_apart(self, rig):
        registry, _, tsdb = rig
        family = registry.counter("demo_by_service_total", "demo",
                                  labelnames=("service",))
        family.labels("video").inc(10)
        family.labels("web").inc(2)
        tsdb.record(now=1.0)
        assert tsdb.latest("demo_by_service_total",
                           labels={"service": "video"}) == 10.0
        # Unfiltered latest sums across label sets.
        assert tsdb.latest("demo_by_service_total") == 12.0


class TestQueries:
    def _fill_counter(self, rig, name="demo_total", per_tick=5.0,
                      ticks=6, dt=10.0):
        registry, _, tsdb = rig
        counter = registry.counter(name, "demo")
        for i in range(ticks):
            counter.inc(per_tick)
            tsdb.record(now=float(i) * dt)
        return tsdb

    def test_rate_matches_hand_computed_delta(self, rig):
        tsdb = self._fill_counter(rig)
        # 5/tick over 10 s ticks → exactly 0.5/s, hand-checkable.
        assert tsdb.rate("demo_total", 60.0, now=50.0) == pytest.approx(0.5)

    def test_rate_none_with_single_sample(self, rig):
        registry, _, tsdb = rig
        registry.counter("demo_total", "demo").inc()
        tsdb.record(now=0.0)
        assert tsdb.rate("demo_total", 60.0, now=0.0) is None

    def test_delta_of_gauge(self, rig):
        registry, _, tsdb = rig
        gauge = registry.gauge("demo_depth", "demo")
        gauge.set(2.0)
        tsdb.record(now=0.0)
        gauge.set(9.0)
        tsdb.record(now=30.0)
        assert tsdb.delta("demo_depth", 60.0, now=30.0) == 7.0

    def test_quantile_over_time_windows_out_old_observations(self, rig):
        registry, _, tsdb = rig
        hist = registry.histogram("demo_seconds", "demo",
                                  buckets=(0.1, 1.0, 10.0))
        # Old slow observations, then a recent fast regime.
        for _ in range(100):
            hist.observe(5.0)
        tsdb.record(now=0.0)
        for _ in range(100):
            hist.observe(0.05)
        tsdb.record(now=100.0)
        # Window covering only the second batch sees the fast regime.
        q = tsdb.quantile_over_time(0.5, "demo_seconds", 60.0, now=100.0)
        assert q is not None and q <= 0.1
        # Bad quantile rejected.
        with pytest.raises(QueryError, match="quantile"):
            tsdb.quantile_over_time(1.5, "demo_seconds", 60.0)

    def test_query_latest_form(self, rig):
        registry, _, tsdb = rig
        registry.gauge("demo_depth", "demo").set(4.0)
        tsdb.record(now=0.0)
        result = tsdb.query("demo_depth")
        assert result["fn"] == "latest"
        assert result["value"] == 4.0
        assert result["series"][0]["samples"] == [[0.0, 4.0]]

    def test_query_rate_value_recomputable_from_samples(self, rig):
        tsdb = self._fill_counter(rig)
        result = tsdb.query("rate(demo_total[60s])", now=50.0)
        samples = result["series"][0]["samples"]
        increase = sum(
            max(0.0, v1 - v0)
            for (_, v0), (_, v1) in zip(samples, samples[1:])
        )
        elapsed = samples[-1][0] - samples[0][0]
        assert result["value"] == pytest.approx(increase / elapsed)

    def test_query_label_selector(self, rig):
        registry, _, tsdb = rig
        family = registry.counter("demo_by_service_total", "demo",
                                  labelnames=("service",))
        family.labels("video").inc(8)
        family.labels("web").inc(1)
        tsdb.record(now=0.0)
        result = tsdb.query("demo_by_service_total{service=video}")
        assert result["value"] == 8.0
        assert result["labels"] == {"service": "video"}

    def test_query_range_param_overrides(self, rig):
        tsdb = self._fill_counter(rig)
        result = tsdb.query("rate(demo_total[5s])", range_s=60.0, now=50.0)
        assert result["range_s"] == 60.0

    @pytest.mark.parametrize("expr,fragment", [
        ("", "empty expression"),
        ("rate(demo_total)", "needs a range"),
        ("rate(demo total[60s])", "malformed selector"),
        ("quantile(demo_seconds[60s])", "two arguments"),
        ("quantile(nope, demo_seconds[60s])", "invalid quantile"),
        ("quantile(2.0, demo_seconds[60s])", "in \\[0, 1\\]"),
        ("demo_total{oops}", "malformed label matcher"),
    ])
    def test_query_parse_errors(self, rig, expr, fragment):
        _, _, tsdb = rig
        with pytest.raises(QueryError, match=fragment):
            tsdb.query(expr)

    def test_query_unknown_series_lists_recorded(self, rig):
        registry, _, tsdb = rig
        registry.gauge("demo_depth", "demo").set(1.0)
        tsdb.record(now=0.0)
        with pytest.raises(QueryError, match="demo_depth"):
            tsdb.query("no_such_series")


class TestSparkline:
    def test_ramp_uses_full_glyph_range(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_flat_series_paints_mid_glyph(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_nan_renders_as_space(self):
        line = sparkline([0.0, math.nan, 1.0])
        assert line[1] == " "

    def test_all_nan_or_empty(self):
        assert sparkline([]) == ""
        assert sparkline([math.nan, math.nan]) == ""

    def test_width_keeps_newest(self):
        line = sparkline(list(range(100)), width=8)
        assert len(line) == 8
