"""Tests for the from-scratch CART decision tree."""

import numpy as np
import pytest

from repro.ml.tree import LEAF, DecisionTreeClassifier


@pytest.fixture()
def xor_free_data(rng):
    # Axis-separable three-class problem a greedy CART must solve exactly.
    x = rng.uniform(-1, 1, size=(300, 4))
    y = np.where(x[:, 0] > 0, 2, np.where(x[:, 1] > 0, 1, 0))
    return x, y


class TestFit:
    def test_pure_leaves_on_separable_data(self, xor_free_data):
        x, y = xor_free_data
        tree = DecisionTreeClassifier().fit(x, y)
        assert np.all(tree.predict(x) == y)

    def test_max_depth_respected(self, xor_free_data):
        x, y = xor_free_data
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert tree.tree_.max_depth() <= 2

    def test_min_samples_leaf_respected(self, xor_free_data):
        x, y = xor_free_data
        tree = DecisionTreeClassifier(min_samples_leaf=20).fit(x, y)
        leaves = tree.tree_.children_left == LEAF
        assert np.all(tree.tree_.n_node_samples[leaves] >= 20)

    def test_single_class_is_single_leaf(self, rng):
        x = rng.normal(size=(30, 3))
        tree = DecisionTreeClassifier().fit(x, np.zeros(30, dtype=int))
        assert tree.tree_.n_nodes == 1

    def test_constant_features_single_leaf(self):
        x = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.tree_.n_nodes == 1
        np.testing.assert_allclose(tree.predict_proba(x)[0], [0.5, 0.5])

    def test_string_labels_supported(self, rng):
        x = rng.normal(size=(40, 2))
        y = np.where(x[:, 0] > 0, "high", "low")
        tree = DecisionTreeClassifier().fit(x, y)
        assert set(tree.predict(x)) <= {"high", "low"}
        assert np.all(tree.predict(x) == y)

    def test_value_rows_are_distributions(self, xor_free_data):
        x, y = xor_free_data
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        np.testing.assert_allclose(tree.tree_.value.sum(axis=1), 1.0)

    def test_children_sample_counts_add_up(self, xor_free_data):
        x, y = xor_free_data
        tree = DecisionTreeClassifier(max_depth=5).fit(x, y)
        structure = tree.tree_
        for node in range(structure.n_nodes):
            if not structure.is_leaf(node):
                left = structure.children_left[node]
                right = structure.children_right[node]
                assert (
                    structure.n_node_samples[node]
                    == structure.n_node_samples[left]
                    + structure.n_node_samples[right]
                )

    def test_max_features_subsampling_changes_tree(self, xor_free_data):
        x, y = xor_free_data
        full = DecisionTreeClassifier(random_state=0).fit(x, y)
        sub = DecisionTreeClassifier(max_features=1, random_state=0).fit(x, y)
        assert full.tree_.n_nodes != sub.tree_.n_nodes or not np.array_equal(
            full.tree_.feature, sub.tree_.feature
        )

    def test_deterministic_given_seed(self, xor_free_data):
        x, y = xor_free_data
        a = DecisionTreeClassifier(max_features="sqrt", random_state=7).fit(x, y)
        b = DecisionTreeClassifier(max_features="sqrt", random_state=7).fit(x, y)
        np.testing.assert_array_equal(a.tree_.feature, b.tree_.feature)
        np.testing.assert_array_equal(a.tree_.threshold, b.tree_.threshold)


class TestPredict:
    def test_predict_proba_shape(self, xor_free_data):
        x, y = xor_free_data
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        proba = tree.predict_proba(x[:10])
        assert proba.shape == (10, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DecisionTreeClassifier().predict(np.ones((1, 2)))

    def test_feature_count_mismatch_rejected(self, xor_free_data):
        x, y = xor_free_data
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        with pytest.raises(ValueError, match="features"):
            tree.predict(np.ones((1, 7)))

    def test_threshold_routing_boundary(self):
        # Split at 0.5: value exactly at the threshold goes left (<=).
        x = np.array([[0.0], [1.0]] * 10)
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.predict(np.array([[0.5]]))[0] == 0


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError, match="max_depth"):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError, match="min_samples_split"):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError, match="min_samples_leaf"):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_bad_max_features(self, rng):
        x = rng.normal(size=(10, 3))
        y = np.array([0, 1] * 5)
        with pytest.raises(ValueError, match="max_features"):
            DecisionTreeClassifier(max_features=10).fit(x, y)
        with pytest.raises(ValueError, match="max_features"):
            DecisionTreeClassifier(max_features="log2").fit(x, y)

    def test_label_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="one label per row"):
            DecisionTreeClassifier().fit(rng.normal(size=(10, 2)), np.zeros(9))
