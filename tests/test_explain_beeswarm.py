"""Tests for the per-cluster SHAP summaries (Fig. 5 data)."""

import numpy as np
import pytest

from repro.explain.beeswarm import (
    ClusterExplanation,
    ServiceImportance,
    explain_clusters,
)
from repro.explain.treeshap import TreeExplainer
from repro.ml.forest import RandomForestClassifier


@pytest.fixture(scope="module")
def toy_explanations():
    # Three clusters defined by three distinct features; the rest is noise.
    rng = np.random.default_rng(0)
    n = 240
    x = rng.normal(scale=0.3, size=(n, 6))
    labels = np.repeat([0, 1, 2], n // 3)
    x[labels == 0, 0] += 2.0   # cluster 0 over-uses feature 0
    x[labels == 1, 1] += 2.0   # cluster 1 over-uses feature 1
    x[labels == 2, 2] -= 2.0   # cluster 2 under-uses feature 2
    forest = RandomForestClassifier(n_estimators=15, max_depth=4,
                                    random_state=0).fit(x, labels)
    names = [f"svc{j}" for j in range(6)]
    explainer = TreeExplainer(forest)
    explanations = explain_clusters(explainer, x, labels, names,
                                    samples_per_cluster=30)
    return explanations, names


class TestExplainClusters:
    def test_one_explanation_per_cluster(self, toy_explanations):
        explanations, _ = toy_explanations
        assert sorted(explanations) == [0, 1, 2]

    def test_defining_feature_ranks_first(self, toy_explanations):
        explanations, _ = toy_explanations
        assert explanations[0].importances[0].service == "svc0"
        assert explanations[1].importances[0].service == "svc1"
        # Cluster 2 is identified both by low svc2 and by the *absence*
        # of the other clusters' markers, so svc2 need only rank highly.
        assert explanations[2].rank_of("svc2") <= 2

    def test_directions(self, toy_explanations):
        explanations, _ = toy_explanations
        assert explanations[0].importances[0].direction == "over"
        assert explanations[1].importances[0].direction == "over"
        svc2_rank = explanations[2].rank_of("svc2")
        assert explanations[2].importances[svc2_rank].direction == "under"

    def test_importances_sorted_descending(self, toy_explanations):
        explanations, _ = toy_explanations
        for explanation in explanations.values():
            values = [si.mean_abs_shap for si in explanation.importances]
            assert values == sorted(values, reverse=True)

    def test_top_k(self, toy_explanations):
        explanations, _ = toy_explanations
        assert len(explanations[0].top(3)) == 3
        assert len(explanations[0].top(100)) == 6

    def test_over_under_partition_top(self, toy_explanations):
        explanations, _ = toy_explanations
        explanation = explanations[0]
        over = set(explanation.over_utilized(6))
        under = set(explanation.under_utilized(6))
        assert over | under == {si.service for si in explanation.top(6)}
        assert not (over & under)

    def test_rank_of(self, toy_explanations):
        explanations, _ = toy_explanations
        assert explanations[0].rank_of("svc0") == 0
        assert explanations[0].rank_of("missing") is None

    def test_all_services_ranked(self, toy_explanations):
        explanations, names = toy_explanations
        for explanation in explanations.values():
            assert {si.service for si in explanation.importances} == set(names)


class TestValidation:
    def test_direction_literal_enforced(self):
        with pytest.raises(ValueError, match="direction"):
            ServiceImportance("x", 0.1, "sideways", 0.0)

    def test_label_length_checked(self, rng):
        forest = RandomForestClassifier(n_estimators=3, random_state=0)
        x = rng.normal(size=(20, 3))
        y = rng.integers(0, 2, size=20)
        forest.fit(x, y)
        with pytest.raises(ValueError, match="labels length"):
            explain_clusters(TreeExplainer(forest), x, y[:-1], list("abc"))

    def test_name_count_checked(self, rng):
        forest = RandomForestClassifier(n_estimators=3, random_state=0)
        x = rng.normal(size=(20, 3))
        y = rng.integers(0, 2, size=20)
        forest.fit(x, y)
        with pytest.raises(ValueError, match="service names"):
            explain_clusters(TreeExplainer(forest), x, y, list("ab"))
