"""Tests for the environment-aware slice planner."""

import numpy as np
import pytest

from repro.apps.slicing import (
    EVENT_DRIVEN_THRESHOLD,
    SliceTemplate,
    build_slice_template,
    capacity_schedule,
    plan_slices,
)
from repro.analysis.temporal import TemporalHeatmap


def heatmap_from_profile(profile24, n_days=14, cluster=0):
    dates = np.arange(np.datetime64("2023-01-02"),
                      np.datetime64("2023-01-02") + np.timedelta64(n_days, "D"))
    values = np.tile(np.asarray(profile24, dtype=float), (n_days, 1))
    return TemporalHeatmap(values=values, dates=dates, cluster=cluster)


class TestSliceTemplate:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_antennas"):
            SliceTemplate(0, 0, (), 1.0, 1.0, (), False)
        with pytest.raises(ValueError, match="peak_to_mean"):
            SliceTemplate(0, 5, (), 0.5, 1.0, (), False)
        with pytest.raises(ValueError, match="busy_hours"):
            SliceTemplate(0, 5, (25,), 1.0, 1.0, (), False)

    def test_describe(self):
        template = SliceTemplate(3, 10, (9, 10), 2.0, 0.1,
                                 ("Microsoft Teams",), False)
        text = template.describe()
        assert "slice c3" in text
        assert "Microsoft Teams" in text


class TestBuildTemplate:
    def test_flat_profile_all_busy(self):
        heatmap = heatmap_from_profile(np.ones(24))
        template = build_slice_template(heatmap, 10, [])
        assert len(template.busy_hours) == 24
        assert not template.event_driven

    def test_peaked_profile_selects_peak_hours(self):
        profile = np.full(24, 0.1)
        profile[8] = 1.0
        profile[18] = 0.9
        heatmap = heatmap_from_profile(profile)
        template = build_slice_template(heatmap, 10, ["Spotify"])
        assert set(template.busy_hours) == {8, 18}
        assert template.priority_services == ("Spotify",)

    def test_bursty_profile_flagged_event_driven(self):
        profile = np.full(24, 0.02)
        profile[20] = 1.0
        heatmap = heatmap_from_profile(profile)
        template = build_slice_template(heatmap, 10, [])
        assert template.peak_to_mean > EVENT_DRIVEN_THRESHOLD
        assert template.event_driven


class TestCapacitySchedule:
    def test_scheduled_slice(self):
        template = SliceTemplate(0, 10, (8, 18), 3.0, 0.3, (), False)
        schedule = capacity_schedule(template)
        assert schedule[8] == 1.0
        assert schedule[18] == 1.0
        assert schedule[3] == pytest.approx(1.0 / 3.0)

    def test_event_driven_keeps_baseline(self):
        template = SliceTemplate(8, 10, (20,), 10.0, 1.0, (), True)
        schedule = capacity_schedule(template)
        assert np.all(schedule == pytest.approx(0.1))

    def test_baseline_floor(self):
        template = SliceTemplate(0, 10, (8,), 100.0, 1.0, (), False)
        schedule = capacity_schedule(template)
        assert schedule.min() == pytest.approx(0.1)


class TestPlanSlices:
    def test_end_to_end(self, small_dataset, small_profile):
        templates = plan_slices(small_dataset, small_profile,
                                max_antennas=15)
        assert sorted(templates) == sorted(small_profile.cluster_sizes())
        # Commuter slice: busy hours include commute windows.
        commuter = templates[0]
        assert any(7 <= h <= 9 for h in commuter.busy_hours)
        assert any(17 <= h <= 19 for h in commuter.busy_hours)
        assert commuter.weekend_factor < 0.6
        # Stadium slice must be event-driven.
        assert templates[6].event_driven or templates[8].event_driven
        # Office slice carries business services.
        office_services = set(templates[3].priority_services)
        assert office_services & {"Microsoft Teams", "LinkedIn", "Slack",
                                  "Microsoft 365", "Zoom", "Gmail", "Outlook"}

    def test_sizes_match_clusters(self, small_dataset, small_profile):
        templates = plan_slices(small_dataset, small_profile,
                                max_antennas=10)
        sizes = small_profile.cluster_sizes()
        for cluster, template in templates.items():
            assert template.n_antennas == sizes[cluster]
