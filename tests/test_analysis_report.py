"""Tests for the markdown profile report."""

import pytest

from repro.analysis.report import profile_report


@pytest.fixture(scope="module")
def report(request):
    small_dataset = request.getfixturevalue("small_dataset")
    small_profile = request.getfixturevalue("small_profile")
    return profile_report(
        small_dataset, small_profile, outdoor_count=150,
        samples_per_cluster=8, max_antennas=12,
    )


class TestProfileReport:
    def test_is_markdown_with_sections(self, report):
        assert report.startswith("# Indoor cellular demand profile")
        assert "## Cluster inventory" in report
        assert "## Temporal regimes" in report
        assert "## Outdoor comparison" in report

    def test_all_clusters_listed(self, report, small_profile):
        for cluster in small_profile.cluster_sizes():
            assert f"| {cluster} |" in report

    def test_inventory_has_environments_and_services(self, report):
        assert "metro" in report
        assert "workspace" in report
        # At least one characterizing service name appears.
        assert any(
            name in report
            for name in ("Spotify", "Microsoft Teams", "Mappy", "LinkedIn")
        )

    def test_temporal_table_has_rows(self, report):
        section = report.split("## Temporal regimes")[1]
        rows = [line for line in section.splitlines()
                if line.startswith("| ") and "cluster" not in line
                and "---" not in line]
        assert len(rows) >= 9

    def test_outdoor_sentence(self, report):
        assert "macro layer" in report

    def test_without_outdoor(self, small_dataset, small_profile):
        text = profile_report(small_dataset, small_profile,
                              samples_per_cluster=8, max_antennas=10)
        assert "## Outdoor comparison" not in text
