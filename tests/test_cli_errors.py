"""CLI error-path coverage: unknown subcommands, bad arguments, missing
paths — every failure must exit with a clear message, never a traceback."""

import pytest

from repro.cli import build_parser, main


class TestUnknownSubcommand:
    def test_unknown_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_no_subcommand_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2


class TestStreamArguments:
    def test_missing_checkpoint_directory_fails_fast(self, tmp_path, capsys):
        # Validation happens before the (expensive) dataset fit.
        missing = tmp_path / "no" / "such" / "dir" / "state.npz"
        code = main(["stream", "--checkpoint", str(missing)])
        assert code == 2
        err = capsys.readouterr().err
        assert "checkpoint directory" in err
        assert "does not exist" in err


class TestServeArguments:
    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "--max-batch", "0"],
            ["serve", "--workers", "0"],
            ["serve", "--queue-depth", "0"],
            ["serve", "--port", "99999"],
            ["serve", "--port", "-1"],
        ],
    )
    def test_invalid_serve_arguments_exit_2(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_frozen_artifact(self, tmp_path, capsys):
        code = main(["serve", "--frozen", str(tmp_path / "nope.npz")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_valid_serve_arguments_parse(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-batch", "32",
             "--workers", "4", "--queue-depth", "16",
             "--cache-ttl", "30"]
        )
        assert args.port == 0
        assert args.max_batch == 32
        assert args.workers == 4
        assert args.cache_ttl == pytest.approx(30.0)


class TestBenchServeArguments:
    @pytest.mark.parametrize(
        "argv",
        [
            ["bench-serve", "--queries", "0"],
            ["bench-serve", "--workers", "0"],
            ["bench-serve", "--workers", "1,x"],
            ["bench-serve", "--workers", ""],
            ["bench-serve", "--max-batch", "-3"],
        ],
    )
    def test_invalid_bench_arguments_exit_2(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2

    def test_worker_list_parses(self):
        args = build_parser().parse_args(
            ["bench-serve", "--workers", "1,4,8"]
        )
        assert args.workers == [1, 4, 8]

    def test_missing_frozen_artifact(self, tmp_path, capsys):
        code = main(["bench-serve", "--frozen", str(tmp_path / "nope.npz")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err
