"""Tests for structured JSON-lines logging and trace correlation."""

import io
import json

import pytest

from repro.obs.logs import (
    TokenBucket,
    get_logger,
    set_log_level,
    set_log_stream,
)
from repro.obs.registry import MetricsRegistry, set_registry
from repro.obs.trace import disable_tracing, enable_tracing, span


@pytest.fixture()
def captured():
    """Route log lines into a StringIO at debug level; restore afterwards."""
    stream = io.StringIO()
    previous_stream = set_log_stream(stream)
    previous_level = set_log_level("debug")
    try:
        yield stream
    finally:
        set_log_stream(previous_stream)
        set_log_level(previous_level)


def _lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestEmission:
    def test_line_is_json_with_core_fields(self, captured):
        get_logger("repro.test").info("ingested", rows=42, hour="2023-01-16")
        [record] = _lines(captured)
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["event"] == "ingested"
        assert record["rows"] == 42
        assert record["hour"] == "2023-01-16"
        assert "ts" in record

    def test_one_line_per_event(self, captured):
        logger = get_logger("repro.test")
        logger.info("a")
        logger.error("b")
        records = _lines(captured)
        assert [r["event"] for r in records] == ["a", "b"]
        assert [r["level"] for r in records] == ["info", "error"]

    def test_non_serializable_fields_are_stringified(self, captured):
        get_logger("repro.test").info("obj", thing=object())
        [record] = _lines(captured)
        assert "object object at" in record["thing"]

    def test_get_logger_caches_by_name(self):
        assert get_logger("same") is get_logger("same")


class TestLevels:
    def test_below_threshold_is_dropped(self, captured):
        set_log_level("warning")
        logger = get_logger("repro.test")
        logger.debug("hidden")
        logger.info("hidden-too")
        logger.warning("visible")
        records = _lines(captured)
        assert [r["event"] for r in records] == ["visible"]

    def test_unknown_level_rejected(self, captured):
        with pytest.raises(ValueError):
            set_log_level("loud")
        with pytest.raises(ValueError):
            get_logger("repro.test").log("loud", "nope")


class TestTokenBucket:
    def test_burst_then_throttle(self):
        clock = {"t": 0.0}
        bucket = TokenBucket(10.0, burst=3.0, clock=lambda: clock["t"])
        assert [bucket.allow() for _ in range(4)] == [True] * 3 + [False]

    def test_continuous_refill(self):
        clock = {"t": 0.0}
        bucket = TokenBucket(10.0, burst=1.0, clock=lambda: clock["t"])
        assert bucket.allow()
        assert not bucket.allow()
        clock["t"] = 0.05  # half a token accrued — still empty
        assert not bucket.allow()
        clock["t"] = 0.11
        assert bucket.allow()

    def test_refill_caps_at_burst(self):
        clock = {"t": 0.0}
        bucket = TokenBucket(100.0, burst=2.0, clock=lambda: clock["t"])
        clock["t"] = 60.0  # an hour of idle never exceeds the burst
        allowed = sum(bucket.allow() for _ in range(10))
        assert allowed == 2

    def test_steady_rate_is_never_throttled(self):
        clock = {"t": 0.0}
        bucket = TokenBucket(1.0, burst=1.0, clock=lambda: clock["t"])
        for step in range(50):
            clock["t"] = float(step)  # exactly the sustained rate
            assert bucket.allow()

    def test_fractional_rate_defaults_to_one_token_burst(self):
        # sample=0.5 (one line every two seconds) is a legitimate
        # sustained rate; the default burst floors at one token instead
        # of rejecting it.
        clock = {"t": 0.0}
        bucket = TokenBucket(0.5, clock=lambda: clock["t"])
        assert bucket.burst == 1.0
        assert bucket.allow()
        assert not bucket.allow()
        clock["t"] = 2.0
        assert bucket.allow()

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(-5.0)
        with pytest.raises(ValueError):
            TokenBucket(10.0, burst=0.5)


class TestSampling:
    @pytest.fixture()
    def fresh_registry(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            yield registry
        finally:
            set_registry(previous)

    def _suppressed(self, registry, logger_name):
        family = registry.get("repro_logs_suppressed_total")
        for labels, child in family.series() if family else ():
            if labels == (logger_name,):
                return child.value
        return 0.0

    def test_suppressed_lines_counted_not_emitted(
        self, captured, fresh_registry
    ):
        clock = {"t": 0.0}
        bucket = TokenBucket(1.0, burst=2.0, clock=lambda: clock["t"])
        logger = get_logger("repro.test.sampled", sample=bucket)
        try:
            for attempt in range(5):
                logger.info("spam", attempt=attempt)
            records = _lines(captured)
            assert [r["attempt"] for r in records] == [0, 1]
            assert self._suppressed(
                fresh_registry, "repro.test.sampled"
            ) == 3.0
        finally:
            logger.set_sampler(None)

    def test_refill_reopens_the_logger(self, captured, fresh_registry):
        clock = {"t": 0.0}
        bucket = TokenBucket(1.0, burst=1.0, clock=lambda: clock["t"])
        logger = get_logger("repro.test.reopen", sample=bucket)
        try:
            logger.info("first")
            logger.info("dropped")
            clock["t"] = 1.5
            logger.info("second")
            assert [r["event"] for r in _lines(captured)] == [
                "first", "second",
            ]
            assert self._suppressed(
                fresh_registry, "repro.test.reopen"
            ) == 1.0
        finally:
            logger.set_sampler(None)

    def test_float_shorthand_attaches_bucket(self, captured):
        logger = get_logger("repro.test.float", sample=50.0)
        try:
            assert isinstance(logger._bucket, TokenBucket)
            assert logger._bucket.rate_per_s == 50.0
            assert logger._bucket.burst == 50.0
        finally:
            logger.set_sampler(None)

    def test_fractional_float_shorthand_works(self, captured):
        logger = get_logger("repro.test.halfrate", sample=0.5)
        try:
            assert logger._bucket.rate_per_s == 0.5
            assert logger._bucket.burst == 1.0
        finally:
            logger.set_sampler(None)

    def test_recall_without_sample_keeps_bucket(self, captured):
        bucket = TokenBucket(5.0)
        logger = get_logger("repro.test.keep", sample=bucket)
        try:
            assert get_logger("repro.test.keep")._bucket is bucket
        finally:
            logger.set_sampler(None)

    def test_below_level_lines_do_not_spend_tokens(
        self, captured, fresh_registry
    ):
        set_log_level("warning")
        clock = {"t": 0.0}
        bucket = TokenBucket(1.0, burst=1.0, clock=lambda: clock["t"])
        logger = get_logger("repro.test.level", sample=bucket)
        try:
            for _ in range(10):
                logger.debug("cheap")  # dropped by level, not the bucket
            logger.warning("kept")
            assert [r["event"] for r in _lines(captured)] == ["kept"]
            assert self._suppressed(
                fresh_registry, "repro.test.level"
            ) == 0.0
        finally:
            logger.set_sampler(None)


class TestTraceCorrelation:
    def test_line_inside_span_carries_ids(self, captured):
        store = enable_tracing(capacity=16)
        try:
            with span("stage") as record:
                get_logger("repro.test").info("inside")
        finally:
            disable_tracing()
            store.clear()
        [line] = _lines(captured)
        assert line["trace_id"] == record.trace_id
        assert line["span_id"] == record.span_id

    def test_line_outside_span_has_no_ids(self, captured):
        get_logger("repro.test").info("outside")
        [line] = _lines(captured)
        assert "trace_id" not in line
        assert "span_id" not in line
