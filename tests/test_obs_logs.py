"""Tests for structured JSON-lines logging and trace correlation."""

import io
import json

import pytest

from repro.obs.logs import get_logger, set_log_level, set_log_stream
from repro.obs.trace import disable_tracing, enable_tracing, span


@pytest.fixture()
def captured():
    """Route log lines into a StringIO at debug level; restore afterwards."""
    stream = io.StringIO()
    previous_stream = set_log_stream(stream)
    previous_level = set_log_level("debug")
    try:
        yield stream
    finally:
        set_log_stream(previous_stream)
        set_log_level(previous_level)


def _lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestEmission:
    def test_line_is_json_with_core_fields(self, captured):
        get_logger("repro.test").info("ingested", rows=42, hour="2023-01-16")
        [record] = _lines(captured)
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["event"] == "ingested"
        assert record["rows"] == 42
        assert record["hour"] == "2023-01-16"
        assert "ts" in record

    def test_one_line_per_event(self, captured):
        logger = get_logger("repro.test")
        logger.info("a")
        logger.error("b")
        records = _lines(captured)
        assert [r["event"] for r in records] == ["a", "b"]
        assert [r["level"] for r in records] == ["info", "error"]

    def test_non_serializable_fields_are_stringified(self, captured):
        get_logger("repro.test").info("obj", thing=object())
        [record] = _lines(captured)
        assert "object object at" in record["thing"]

    def test_get_logger_caches_by_name(self):
        assert get_logger("same") is get_logger("same")


class TestLevels:
    def test_below_threshold_is_dropped(self, captured):
        set_log_level("warning")
        logger = get_logger("repro.test")
        logger.debug("hidden")
        logger.info("hidden-too")
        logger.warning("visible")
        records = _lines(captured)
        assert [r["event"] for r in records] == ["visible"]

    def test_unknown_level_rejected(self, captured):
        with pytest.raises(ValueError):
            set_log_level("loud")
        with pytest.raises(ValueError):
            get_logger("repro.test").log("loud", "nope")


class TestTraceCorrelation:
    def test_line_inside_span_carries_ids(self, captured):
        store = enable_tracing(capacity=16)
        try:
            with span("stage") as record:
                get_logger("repro.test").info("inside")
        finally:
            disable_tracing()
            store.clear()
        [line] = _lines(captured)
        assert line["trace_id"] == record.trace_id
        assert line["span_id"] == record.span_id

    def test_line_outside_span_has_no_ids(self, captured):
        get_logger("repro.test").info("outside")
        [line] = _lines(captured)
        assert "trace_id" not in line
        assert "span_id" not in line
