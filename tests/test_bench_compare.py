"""Tests for the bench-regression guard and its metric-path spec mode."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench_compare.py"
_spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
bench_compare = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_compare", bench_compare)
_spec.loader.exec_module(bench_compare)


def serve_report(unbatched=100.0, w4=400.0, cached=900.0, n_queries=800):
    return {
        "config": {
            "n_reference_antennas": 120, "n_services": 12,
            "n_queries": n_queries, "n_clusters": 4,
            "max_batch": 64, "max_wait_ms": 2.0,
        },
        "unbatched": {"qps": unbatched},
        "cached": {"qps": cached},
        "batched": [
            {"workers": 1, "qps": unbatched * 1.5},
            {"workers": 4, "qps": w4},
        ],
        "speedup": w4 / unbatched,
    }


class TestExtractPath:
    def test_nested_keys(self):
        report = {"a": {"b": {"c": 3.5}}}
        assert bench_compare.extract_path(report, "a.b.c") == 3.5

    def test_list_index(self):
        report = {"runs": [{"qps": 1.0}, {"qps": 2.0}]}
        assert bench_compare.extract_path(report, "runs[1].qps") == 2.0
        assert bench_compare.extract_path(report, "runs[-1].qps") == 2.0
        assert bench_compare.extract_path(report, "runs[9].qps") is None

    def test_key_value_selector(self):
        report = serve_report()
        assert bench_compare.extract_path(
            report, "batched[workers=4].qps"
        ) == 400.0
        assert bench_compare.extract_path(
            report, "batched[workers=8].qps"
        ) is None

    def test_misses_return_none(self):
        report = serve_report()
        assert bench_compare.extract_path(report, "nope.qps") is None
        assert bench_compare.extract_path(report, "unbatched[0]") is None
        assert bench_compare.extract_path(report, "batched[bogus].qps") is None


class TestSpecMode:
    SPEC = {
        "config_keys": ["n_queries"],
        "metrics": {"unbatched_qps": "unbatched.qps"},
        "ratios": {
            "w4_vs_unbatched": ["batched[workers=4].qps", "unbatched.qps"],
        },
    }

    def test_regression_detected(self):
        baseline = serve_report(w4=400.0)
        fresh = serve_report(w4=100.0)
        rows, failures = bench_compare.compare(
            baseline, fresh, 0.30, spec=self.SPEC
        )
        assert failures == ["w4_vs_unbatched"]

    def test_improvement_never_fails(self):
        rows, failures = bench_compare.compare(
            serve_report(w4=400.0), serve_report(w4=800.0), 0.30,
            spec=self.SPEC,
        )
        assert failures == []

    def test_absolute_metrics_gated_by_config_keys(self):
        baseline = serve_report(n_queries=800)
        fresh = serve_report(unbatched=10.0, w4=40.0, n_queries=100)
        rows, failures = bench_compare.compare(
            baseline, fresh, 0.30, spec=self.SPEC
        )
        # unbatched_qps dropped 10x but configs differ: ratio-only mode.
        assert failures == []
        assert [name for name, *_ in rows] == ["w4_vs_unbatched"]

    def test_missing_path_skips_not_fails(self):
        fresh = serve_report()
        del fresh["batched"][1]  # no workers=4 entry this run
        rows, failures = bench_compare.compare(
            serve_report(), fresh, 0.30, spec=self.SPEC
        )
        assert failures == []
        skipped = [row for row in rows if row[-1] == "skipped"]
        assert [row[0] for row in skipped] == ["w4_vs_unbatched"]

    def test_spec_validation(self, tmp_path):
        bad = tmp_path / "spec.json"
        bad.write_text(json.dumps({"ratios": {"r": ["only-one"]}}))
        with pytest.raises(SystemExit, match="r"):
            bench_compare.load_spec(str(bad))
        bad.write_text(json.dumps({"metrics": {"m": 3}}))
        with pytest.raises(SystemExit, match="m"):
            bench_compare.load_spec(str(bad))


class TestDefaultMode:
    def test_identical_reports_pass(self):
        rows, failures = bench_compare.compare(
            serve_report(), serve_report(), 0.30
        )
        assert failures == []
        assert rows

    def test_speedup_regression_fails(self):
        rows, failures = bench_compare.compare(
            serve_report(w4=400.0), serve_report(w4=100.0), 0.30
        )
        assert "speedup" in failures

    def test_main_exit_codes(self, tmp_path):
        baseline = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        baseline.write_text(json.dumps(serve_report()))
        fresh.write_text(json.dumps(serve_report()))
        assert bench_compare.main(
            ["--baseline", str(baseline), "--fresh", str(fresh)]
        ) == 0
        fresh.write_text(json.dumps(serve_report(w4=10.0)))
        assert bench_compare.main(
            ["--baseline", str(baseline), "--fresh", str(fresh)]
        ) == 1

    def test_main_with_spec_file(self, tmp_path):
        baseline = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        spec = tmp_path / "spec.json"
        baseline.write_text(json.dumps(serve_report()))
        fresh.write_text(json.dumps(serve_report(w4=10.0)))
        spec.write_text(json.dumps(TestSpecMode.SPEC))
        assert bench_compare.main([
            "--baseline", str(baseline), "--fresh", str(fresh),
            "--spec", str(spec),
        ]) == 1


class TestUnresolvedSpecPaths:
    def test_typoed_path_reported_not_traceback(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        spec = tmp_path / "spec.json"
        baseline.write_text(json.dumps(serve_report()))
        fresh.write_text(json.dumps(serve_report()))
        spec.write_text(json.dumps({
            "metrics": {"oops": "unbatchd.qps"},  # typo'd path
            "ratios": {
                "bad": ["batched[workers=99].qps", "unbatched.qps"],
            },
        }))
        code = bench_compare.main([
            "--baseline", str(baseline), "--fresh", str(fresh),
            "--spec", str(spec),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "Traceback" not in out
        assert "match nothing" in out or "resolved to no numeric" in out
        assert "unbatchd.qps" in out
        assert "batched[workers=99].qps" in out
        assert "check the dotted path spelling" in out

    def test_path_in_only_one_report_is_fine(self, tmp_path):
        # A metric missing from one report is routine subset-benching,
        # not a spec error.
        baseline = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        spec = tmp_path / "spec.json"
        full = serve_report()
        partial = serve_report()
        del partial["cached"]
        baseline.write_text(json.dumps(full))
        fresh.write_text(json.dumps(partial))
        spec.write_text(json.dumps({
            "metrics": {"cached_qps": "cached.qps",
                        "unbatched_qps": "unbatched.qps"},
        }))
        assert bench_compare.main([
            "--baseline", str(baseline), "--fresh", str(fresh),
            "--spec", str(spec),
        ]) == 0

    def test_unresolved_helper_maps_path_to_owner(self):
        spec = {
            "metrics": {"good": "unbatched.qps", "bad": "nope.qps"},
            "ratios": {"r": ["missing.num", "unbatched.qps"]},
        }
        missing = bench_compare.unresolved_spec_paths(
            serve_report(), serve_report(), spec
        )
        assert set(missing) == {"nope.qps", "missing.num"}
        assert missing["nope.qps"] == "metric 'bad'"
        assert missing["missing.num"] == "ratio 'r'"
