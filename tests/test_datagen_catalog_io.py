"""Tests for service-catalog JSON (de)serialization."""

import json

import pytest

from repro.datagen.catalog_io import (
    catalog_from_json,
    catalog_to_json,
    load_catalog,
    save_catalog,
)
from repro.datagen.services import ServiceCategory, default_catalog


class TestRoundtrip:
    def test_default_catalog_roundtrips(self):
        original = default_catalog()
        recovered = catalog_from_json(catalog_to_json(original))
        assert recovered.names == original.names
        for a, b in zip(recovered, original):
            assert a == b

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(default_catalog(), path)
        recovered = load_catalog(path)
        assert len(recovered) == 73

    def test_custom_catalog_usable_by_generator(self, tmp_path):
        from repro.datagen import generate_dataset
        from repro.datagen.scenarios import scaled_specs

        text = json.dumps([
            {"name": "AppA", "category": "video_streaming",
             "popularity": 5.0, "temporal_class": "evening"},
            {"name": "AppB", "category": "music",
             "popularity": 2.0, "temporal_class": "commute",
             "downlink_fraction": 0.9},
            {"name": "AppC", "category": "business",
             "popularity": 1.0, "temporal_class": "business_hours"},
        ])
        catalog = catalog_from_json(text)
        dataset = generate_dataset(master_seed=1,
                                   specs=scaled_specs(0.03),
                                   catalog=catalog)
        assert dataset.n_services == 3
        assert dataset.totals.shape[1] == 3


class TestValidation:
    def test_malformed_json(self):
        with pytest.raises(ValueError, match="malformed"):
            catalog_from_json("{not json")

    def test_empty_list(self):
        with pytest.raises(ValueError, match="non-empty"):
            catalog_from_json("[]")

    def test_missing_keys(self):
        with pytest.raises(ValueError, match="lacks keys"):
            catalog_from_json(json.dumps([{"name": "X"}]))

    def test_unknown_category(self):
        entry = {"name": "X", "category": "telepathy",
                 "popularity": 1.0, "temporal_class": "flat"}
        with pytest.raises(ValueError, match="unknown category"):
            catalog_from_json(json.dumps([entry]))

    def test_unknown_temporal_class(self):
        entry = {"name": "X", "category": "web",
                 "popularity": 1.0, "temporal_class": "always"}
        with pytest.raises(ValueError, match="temporal_class"):
            catalog_from_json(json.dumps([entry]))

    def test_duplicate_names_rejected(self):
        entry = {"name": "X", "category": "web",
                 "popularity": 1.0, "temporal_class": "flat"}
        with pytest.raises(ValueError, match="duplicate"):
            catalog_from_json(json.dumps([entry, entry]))

    def test_default_downlink_applied(self):
        entry = {"name": "X", "category": "web",
                 "popularity": 1.0, "temporal_class": "flat"}
        catalog = catalog_from_json(json.dumps([entry]))
        assert catalog["X"].downlink_fraction == pytest.approx(0.85)
