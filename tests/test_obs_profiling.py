"""Tests for the per-stage profiling hooks and timed_stage wrapper."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry, profile_stage, timed_stage
from repro.obs.trace import disable_tracing, enable_tracing


@pytest.fixture()
def traced():
    store = enable_tracing(capacity=64)
    try:
        yield store
    finally:
        disable_tracing()
        store.clear()


class TestProfileStage:
    def test_fills_wall_and_cpu_time(self):
        registry = MetricsRegistry()
        with profile_stage("work", registry=registry) as stats:
            total = 0
            for index in range(200_000):
                total += index
        assert stats.name == "work"
        assert stats.wall_seconds > 0.0
        assert stats.cpu_seconds > 0.0
        assert stats.peak_rss_bytes is None or stats.peak_rss_bytes > 0

    def test_records_stage_histogram(self):
        registry = MetricsRegistry()
        with profile_stage("work", registry=registry):
            pass
        family = registry.get("repro_stage_seconds")
        assert family is not None
        assert family.labels(stage="work").count == 1

    def test_trace_memory_measures_allocation(self):
        registry = MetricsRegistry()
        with profile_stage("alloc", registry=registry,
                           trace_memory=True) as stats:
            buffer = np.ones(512 * 1024, dtype=np.float64)  # 4 MiB
            del buffer
        assert stats.peak_traced_bytes is not None
        assert stats.peak_traced_bytes >= 4 * 2**20

    def test_summary_mentions_stage_and_units(self):
        registry = MetricsRegistry()
        with profile_stage("named", registry=registry) as stats:
            pass
        text = stats.summary()
        assert text.startswith("named:")
        assert "ms wall" in text

    def test_exception_still_records(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with profile_stage("fails", registry=registry) as stats:
                raise RuntimeError("boom")
        assert stats.wall_seconds > 0.0
        assert registry.get("repro_stage_seconds").labels(
            stage="fails").count == 1

    def test_opens_a_span(self, traced):
        registry = MetricsRegistry()
        with profile_stage("spanning", registry=registry):
            pass
        assert [s.name for s in traced.spans()] == ["spanning"]


class TestTimedStage:
    def test_records_histogram_and_span(self, traced):
        registry = MetricsRegistry()
        with timed_stage("stage.x", registry=registry, rows=5):
            pass
        assert registry.get("repro_stage_seconds").labels(
            stage="stage.x").count == 1
        [record] = traced.spans()
        assert record.name == "stage.x"
        assert record.attributes["rows"] == 5

    def test_works_with_tracing_disabled(self):
        registry = MetricsRegistry()
        with timed_stage("quiet", registry=registry):
            pass
        assert registry.get("repro_stage_seconds").labels(
            stage="quiet").count == 1

    def test_exception_propagates_and_still_observes(self, traced):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            with timed_stage("bad", registry=registry):
                raise ValueError("x")
        assert registry.get("repro_stage_seconds").labels(
            stage="bad").count == 1
        [record] = traced.spans()
        assert record.error is True


class TestPipelineIntegration:
    def test_pipeline_fit_emits_stage_spans(self, traced):
        from repro.core.pipeline import ICNProfiler

        rng = np.random.default_rng(0)
        totals = rng.lognormal(0.0, 1.0, size=(60, 8))
        profiler = ICNProfiler(n_clusters=3, surrogate_trees=5)
        profile = profiler.fit(totals)
        profile.explain(samples_per_cluster=3)
        names = {s.name for s in traced.spans()}
        assert {"pipeline.rca", "pipeline.cluster", "pipeline.surrogate",
                "pipeline.shap"} <= names

    def test_streaming_profiler_emits_spans(self, traced):
        from repro.stream import StreamingProfiler, replay_tensor
        from tests.conftest import build_frozen_profile

        frozen, totals = build_frozen_profile(n_antennas=40, n_services=6,
                                              n_clusters=3)
        tensor = np.repeat(totals[:, :, None] / 4.0, 4, axis=2)
        hours = np.arange(
            np.datetime64("2023-01-16T00", "h"),
            np.datetime64("2023-01-16T04", "h"),
        )
        streamer = StreamingProfiler(frozen, window_hours=4)
        for batch in replay_tensor(tensor, hours, frozen.antenna_ids,
                                   frozen.service_names):
            streamer.ingest(batch)
        names = {s.name for s in traced.spans()}
        assert {"stream.ingest", "stream.classify"} <= names
