"""Tests for CSV ingestion/export of operator-style traffic data."""

import numpy as np
import pytest

from repro.io.csvio import (
    export_hourly_csv,
    export_totals_csv,
    load_hourly_csv,
    load_totals_csv,
    totals_from_hourly,
)


class TestTotalsCsv:
    def test_roundtrip(self, tmp_path, small_dataset):
        path = tmp_path / "totals.csv"
        export_totals_csv(
            path, small_dataset.totals[:20],
            small_dataset.antenna_names()[:20],
            small_dataset.service_names,
        )
        names, services, totals = load_totals_csv(path)
        assert names == small_dataset.antenna_names()[:20]
        assert services == small_dataset.service_names
        np.testing.assert_allclose(totals, small_dataset.totals[:20],
                                   rtol=1e-5)

    def test_pipeline_runs_on_loaded_totals(self, tmp_path, small_dataset):
        from repro.core.pipeline import ICNProfiler

        path = tmp_path / "totals.csv"
        export_totals_csv(
            path, small_dataset.totals, small_dataset.antenna_names(),
            small_dataset.service_names,
        )
        _, _, totals = load_totals_csv(path)
        profile = ICNProfiler(n_clusters=4, surrogate_trees=5).fit(totals)
        assert profile.n_clusters == 4

    def test_export_validation(self, tmp_path):
        with pytest.raises(ValueError, match="antenna names"):
            export_totals_csv(tmp_path / "x.csv", np.ones((2, 3)),
                              ["a"], ["s1", "s2", "s3"])
        with pytest.raises(ValueError, match="service names"):
            export_totals_csv(tmp_path / "x.csv", np.ones((2, 3)),
                              ["a", "b"], ["s1"])

    def test_load_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar,Netflix\n1,x,2.0\n")
        with pytest.raises(ValueError, match="header"):
            load_totals_csv(path)

    def test_load_rejects_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("antenna_id,name,Netflix\n0,a,1.0\n1,b\n")
        with pytest.raises(ValueError, match="expected 3 cells"):
            load_totals_csv(path)

    def test_load_rejects_non_numeric(self, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text("antenna_id,name,Netflix\n0,a,much\n")
        with pytest.raises(ValueError, match="non-numeric"):
            load_totals_csv(path)

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_totals_csv(path)

    def test_load_rejects_headers_only(self, tmp_path):
        path = tmp_path / "hdr.csv"
        path.write_text("antenna_id,name,Netflix\n")
        with pytest.raises(ValueError, match="no antenna rows"):
            load_totals_csv(path)


class TestHourlyCsv:
    def test_roundtrip(self, tmp_path, small_dataset):
        window = small_dataset.calendar.window(
            np.datetime64("2023-01-09T00", "h"),
            np.datetime64("2023-01-10T23", "h"),
        )
        antenna_ids = [0, 1, 2]
        hourly = small_dataset.hourly_service(
            "Netflix", antenna_ids=antenna_ids, window=window
        )
        hours = small_dataset.calendar.hours[window]
        path = tmp_path / "hourly.csv"
        export_hourly_csv(path, hourly, hours, antenna_ids, "Netflix")
        ids, services, loaded_hours, tensor = load_hourly_csv(path)
        np.testing.assert_array_equal(ids, antenna_ids)
        assert services == ["Netflix"]
        np.testing.assert_array_equal(loaded_hours, hours)
        np.testing.assert_allclose(tensor[:, 0, :], hourly, rtol=1e-5)

    def test_duplicates_summed(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text(
            "antenna_id,service,timestamp,traffic_mb\n"
            "0,Netflix,2023-01-09T05,1.5\n"
            "0,Netflix,2023-01-09T05,2.5\n"
        )
        _, _, _, tensor = load_hourly_csv(path)
        assert tensor[0, 0, 0] == pytest.approx(4.0)

    def test_totals_from_hourly(self, tmp_path):
        tensor = np.arange(24, dtype=float).reshape(2, 3, 4)
        totals = totals_from_hourly(tensor)
        np.testing.assert_allclose(totals, tensor.sum(axis=2))
        with pytest.raises(ValueError, match="3-D"):
            totals_from_hourly(np.ones((2, 2)))

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "antenna_id,service,timestamp,traffic_mb\n"
            "zero,Netflix,2023-01-09T05,1.0\n"
        )
        with pytest.raises(ValueError, match="malformed"):
            load_hourly_csv(path)

    def test_load_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c,d\n")
        with pytest.raises(ValueError, match="header"):
            load_hourly_csv(path)

    def test_export_shape_validation(self, tmp_path):
        with pytest.raises(ValueError, match="does not match"):
            export_hourly_csv(
                tmp_path / "x.csv", np.ones((2, 5)),
                np.arange(np.datetime64("2023-01-01T00"),
                          np.datetime64("2023-01-01T04")),
                [0, 1], "Netflix",
            )


class TestIterHourlyCsv:
    """Chunked (hour-at-a-time) reads of long-schema hourly CSVs."""

    def _write(self, path, rows):
        path.write_text(
            "antenna_id,service,timestamp,traffic_mb\n"
            + "\n".join(",".join(str(c) for c in row) for row in rows)
            + "\n"
        )

    def test_chunks_match_full_load(self, tmp_path):
        from repro.io.csvio import iter_hourly_csv

        path = tmp_path / "hourly.csv"
        self._write(path, [
            (0, "Netflix", "2023-01-09T00", 1.0),
            (1, "Spotify", "2023-01-09T00", 2.0),
            (0, "Spotify", "2023-01-09T01", 3.0),
            (1, "Netflix", "2023-01-09T02", 4.0),
        ])
        ids, services, hours, tensor = load_hourly_csv(path)
        chunks = list(iter_hourly_csv(path, services))
        assert len(chunks) == hours.size
        for t, (hour, chunk_ids, matrix) in enumerate(chunks):
            assert hour == hours[t]
            for k, antenna in enumerate(chunk_ids):
                row = int(np.searchsorted(ids, antenna))
                np.testing.assert_allclose(matrix[k], tensor[row, :, t])

    def test_duplicates_within_hour_summed(self, tmp_path):
        from repro.io.csvio import iter_hourly_csv

        path = tmp_path / "dup.csv"
        self._write(path, [
            (0, "Netflix", "2023-01-09T05", 1.5),
            (0, "Netflix", "2023-01-09T05", 2.5),
        ])
        (_, _, matrix), = iter_hourly_csv(path, ["Netflix"])
        assert matrix[0, 0] == pytest.approx(4.0)

    def test_rejects_backwards_timestamps(self, tmp_path):
        from repro.io.csvio import iter_hourly_csv

        path = tmp_path / "unordered.csv"
        self._write(path, [
            (0, "Netflix", "2023-01-09T05", 1.0),
            (0, "Netflix", "2023-01-09T04", 1.0),
        ])
        with pytest.raises(ValueError, match="backwards"):
            list(iter_hourly_csv(path, ["Netflix"]))

    def test_rejects_unknown_service(self, tmp_path):
        from repro.io.csvio import iter_hourly_csv

        path = tmp_path / "unknown.csv"
        self._write(path, [(0, "Netflix", "2023-01-09T05", 1.0)])
        with pytest.raises(ValueError, match="not in"):
            list(iter_hourly_csv(path, ["Spotify"]))

    def test_rejects_empty_and_headers_only(self, tmp_path):
        from repro.io.csvio import iter_hourly_csv

        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            list(iter_hourly_csv(empty, ["Netflix"]))
        headers = tmp_path / "headers.csv"
        headers.write_text("antenna_id,service,timestamp,traffic_mb\n")
        with pytest.raises(ValueError, match="no measurements"):
            list(iter_hourly_csv(headers, ["Netflix"]))
