"""Tests for site/antenna layout generation."""

from collections import Counter

import numpy as np
import pytest

from repro.datagen.antennas import CITY_COORDS, generate_layout
from repro.datagen.archetypes import Archetype, ORANGE_GROUP
from repro.datagen.environments import (
    EnvironmentType,
    METRO_CITIES,
    TABLE1_COUNTS,
)
from tests.conftest import scaled_specs


@pytest.fixture(scope="module")
def layout():
    return generate_layout(master_seed=3, specs=scaled_specs(0.1))


class TestLayout:
    def test_counts_match_specs(self, layout):
        _, antennas = layout
        specs = scaled_specs(0.1)
        counts = Counter(a.env_type for a in antennas)
        for spec in specs:
            assert counts[spec.env_type] == spec.count

    def test_full_scale_matches_table1(self):
        _, antennas = generate_layout(master_seed=0)
        counts = Counter(a.env_type for a in antennas)
        for env, expected in TABLE1_COUNTS.items():
            assert counts[env] == expected

    def test_antenna_ids_contiguous(self, layout):
        _, antennas = layout
        assert [a.antenna_id for a in antennas] == list(range(len(antennas)))

    def test_site_ids_valid(self, layout):
        sites, antennas = layout
        site_ids = {s.site_id for s in sites}
        assert site_ids == set(range(len(sites)))
        assert all(a.site_id in site_ids for a in antennas)

    def test_antennas_share_site_city(self, layout):
        sites, antennas = layout
        by_id = {s.site_id: s for s in sites}
        for antenna in antennas:
            assert antenna.city == by_id[antenna.site_id].city
            assert antenna.env_type == by_id[antenna.site_id].env_type

    def test_names_embed_site_name(self, layout):
        sites, antennas = layout
        by_id = {s.site_id: s for s in sites}
        for antenna in antennas:
            assert antenna.name.startswith(by_id[antenna.site_id].name)

    def test_metro_cities_only(self, layout):
        _, antennas = layout
        for antenna in antennas:
            if antenna.env_type == EnvironmentType.METRO:
                assert antenna.city in METRO_CITIES

    def test_paris_flag_consistent(self, layout):
        _, antennas = layout
        for antenna in antennas:
            assert antenna.is_paris == (antenna.city == "Paris")

    def test_metro_archetypes_are_orange(self, layout):
        _, antennas = layout
        for antenna in antennas:
            if antenna.env_type in (EnvironmentType.METRO, EnvironmentType.TRAIN):
                assert antenna.archetype in ORANGE_GROUP

    def test_non_paris_metro_is_archetype7(self, layout):
        _, antennas = layout
        for antenna in antennas:
            if antenna.env_type == EnvironmentType.METRO and not antenna.is_paris:
                assert antenna.archetype == Archetype.PROVINCIAL_COMMUTER

    def test_coordinates_near_city(self, layout):
        _, antennas = layout
        for antenna in antennas:
            lat0, lon0 = CITY_COORDS[antenna.city]
            assert abs(antenna.lat - lat0) < 0.5
            assert abs(antenna.lon - lon0) < 0.5

    def test_mostly_4g(self, layout):
        _, antennas = layout
        five_g = sum(1 for a in antennas if a.technology == "5G")
        assert five_g / len(antennas) < 0.10

    def test_deterministic(self):
        a = generate_layout(master_seed=3, specs=scaled_specs(0.1))
        b = generate_layout(master_seed=3, specs=scaled_specs(0.1))
        assert [x.name for x in a[1]] == [y.name for y in b[1]]
        assert [x.archetype for x in a[1]] == [y.archetype for y in b[1]]

    def test_seed_changes_layout(self):
        a = generate_layout(master_seed=3, specs=scaled_specs(0.1))
        b = generate_layout(master_seed=4, specs=scaled_specs(0.1))
        assert [x.archetype for x in a[1]] != [y.archetype for y in b[1]]

    def test_bad_five_g_fraction(self):
        with pytest.raises(ValueError, match="five_g_fraction"):
            generate_layout(five_g_fraction=2.0)
