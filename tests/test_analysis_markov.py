"""Tests for the two-state Markov usage baseline."""

import numpy as np
import pytest

from repro.analysis.markov import (
    MarkovUsageModel,
    activity_states,
    cluster_markov_models,
    fit_markov,
)


class TestActivityStates:
    def test_thresholding(self):
        series = np.array([0.0, 0.0, 10.0, 10.0])
        states = activity_states(series, threshold_fraction=0.2)
        np.testing.assert_array_equal(states, [False, False, True, True])

    def test_zero_series_all_idle(self):
        states = activity_states(np.zeros(10))
        assert not states.any()

    def test_validation(self):
        with pytest.raises(ValueError, match="series"):
            activity_states(np.array([1.0]))
        with pytest.raises(ValueError, match="threshold_fraction"):
            activity_states(np.ones(5), threshold_fraction=0.0)


class TestFitMarkov:
    def test_alternating_sequence(self):
        states = np.array([True, False] * 50)
        model = fit_markov(states)
        assert model.p_stay_active < 0.1
        assert model.p_stay_idle < 0.1
        assert model.duty_cycle == pytest.approx(0.5, abs=0.05)

    def test_persistent_sequence(self):
        states = np.array([True] * 50 + [False] * 50)
        model = fit_markov(states)
        assert model.p_stay_active > 0.9
        assert model.p_stay_idle > 0.9

    def test_duty_cycle_tracks_activity_share(self, rng):
        states = rng.random(2000) < 0.3  # iid 30% active
        model = fit_markov(states)
        assert model.duty_cycle == pytest.approx(0.3, abs=0.05)

    def test_run_lengths(self):
        model = MarkovUsageModel(p_stay_active=0.9, p_stay_idle=0.5,
                                 duty_cycle=0.8)
        assert model.mean_active_run_hours == pytest.approx(10.0)
        assert model.mean_idle_run_hours == pytest.approx(2.0)

    def test_all_active_smoothed(self):
        model = fit_markov(np.ones(100, dtype=bool))
        assert 0.9 < model.p_stay_active < 1.0
        assert model.duty_cycle > 0.9

    def test_validation(self):
        with pytest.raises(ValueError, match="states"):
            fit_markov(np.array([True]))


class TestClusterModels:
    def test_cluster_rhythms_separate(self, small_dataset, small_profile):
        models = cluster_markov_models(
            small_dataset, small_profile.labels, max_antennas=10
        )
        assert sorted(models) == sorted(small_profile.cluster_sizes())
        # Offices (cluster 3) idle longer than always-open retail (2):
        # weekends and nights are idle streaks.
        assert (models[3].mean_idle_run_hours
                > models[2].mean_idle_run_hours)
        # Commuters (0) have a lower duty cycle than general use (1).
        assert models[0].duty_cycle < models[1].duty_cycle

    def test_office_rhythm_most_intermittent(self, small_dataset,
                                             small_profile):
        models = cluster_markov_models(
            small_dataset, small_profile.labels, max_antennas=10
        )
        # Offices have the longest idle streaks (nights + whole weekends)
        # and the lowest duty cycle of all clusters.
        idle_runs = {c: m.mean_idle_run_hours for c, m in models.items()}
        duty = {c: m.duty_cycle for c, m in models.items()}
        assert max(idle_runs, key=idle_runs.get) == 3
        assert min(duty, key=duty.get) == 3

    def test_label_mismatch(self, small_dataset, small_profile):
        with pytest.raises(ValueError, match="labels length"):
            cluster_markov_models(small_dataset, small_profile.labels[:-1])
