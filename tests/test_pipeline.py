"""Integration tests: the full ICNProfiler pipeline on generated data.

These tests run the complete methodology on the scaled-down deployment
(the session-scoped ``small_profile`` fixture) and assert the paper's
headline findings survive end-to-end.
"""

import numpy as np
import pytest

from repro.core.pipeline import ICNProfiler
from repro.datagen.archetypes import GREEN_GROUP, ORANGE_GROUP, RED_GROUP
from repro.datagen.environments import EnvironmentType
from repro.ml.metrics import accuracy


class TestFit:
    def test_nine_clusters(self, small_profile):
        assert small_profile.n_clusters == 9

    def test_labels_recover_archetypes(self, small_dataset, small_profile):
        agreement = accuracy(small_profile.labels, small_dataset.archetypes())
        assert agreement > 0.97

    def test_surrogate_faithful(self, small_profile):
        assert small_profile.surrogate_accuracy > 0.98

    def test_features_are_rsca(self, small_profile):
        assert small_profile.features.min() >= -1.0
        assert small_profile.features.max() <= 1.0

    def test_cluster_sizes_sum_to_n(self, small_profile, small_dataset):
        assert sum(small_profile.cluster_sizes().values()) == small_dataset.n_antennas

    def test_fit_raw_matrix(self, small_dataset):
        profiler = ICNProfiler(n_clusters=4, surrogate_trees=10)
        profile = profiler.fit(small_dataset.totals[:120])
        assert profile.n_clusters == 4
        assert profile.env_types is None
        with pytest.raises(RuntimeError, match="TrafficDataset"):
            profile.environment_table()
        with pytest.raises(RuntimeError, match="TrafficDataset"):
            profile.paris_shares()

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="n_clusters"):
            ICNProfiler(n_clusters=1)
        with pytest.raises(ValueError, match="surrogate_trees"):
            ICNProfiler(surrogate_trees=0)


class TestGroups:
    def test_three_dendrogram_groups_match_paper(self, small_profile):
        groups = small_profile.groups(3)
        by_group = {}
        for cluster, group in groups.items():
            by_group.setdefault(group, set()).add(cluster)
        partitions = sorted(sorted(v) for v in by_group.values())
        assert partitions == [
            sorted(int(a) for a in ORANGE_GROUP),
            sorted(int(a) for a in RED_GROUP),
            sorted(int(a) for a in GREEN_GROUP),
        ] or partitions == sorted([
            sorted(int(a) for a in ORANGE_GROUP),
            sorted(int(a) for a in GREEN_GROUP),
            sorted(int(a) for a in RED_GROUP),
        ])


class TestAlignment:
    def test_aligned_to_is_stable_when_already_aligned(
        self, small_profile, small_dataset
    ):
        again = small_profile.aligned_to(small_dataset.archetypes())
        np.testing.assert_array_equal(again.labels, small_profile.labels)

    def test_alignment_improves_agreement(self, small_dataset):
        profiler = ICNProfiler(n_clusters=9, surrogate_trees=10)
        raw = profiler.fit(small_dataset)
        aligned = raw.aligned_to(small_dataset.archetypes())
        arch = small_dataset.archetypes()
        assert accuracy(aligned.labels, arch) >= accuracy(raw.labels, arch)


class TestEnvironmentFindings:
    def test_orange_clusters_are_transit_only(self, small_profile):
        # Fig. 7a: metro and train stations monopolize the orange group.
        table = small_profile.environment_table()
        transit = {EnvironmentType.METRO, EnvironmentType.TRAIN}
        for cluster in (0, 4, 7):
            composition = table.composition_of(cluster)
            share = sum(composition[e] for e in transit)
            assert share > 0.95, cluster

    def test_cluster3_mostly_workspaces(self, small_profile):
        composition = small_profile.environment_table().composition_of(3)
        assert composition[EnvironmentType.WORKSPACE] > 0.6

    def test_airports_and_tunnels_flow_to_cluster1(self, small_profile):
        table = small_profile.environment_table()
        for env in (EnvironmentType.AIRPORT, EnvironmentType.TUNNEL):
            dist = table.distribution_of(env)
            assert dist[1] > 0.8, env

    def test_hospitals_flow_to_cluster2(self, small_profile):
        dist = small_profile.environment_table().distribution_of(
            EnvironmentType.HOSPITAL
        )
        assert dist[2] > 0.7

    def test_paris_shares_match_narrative(self, small_profile):
        shares = small_profile.paris_shares()
        # Clusters 0/4: Paris commuters; cluster 7: non-capital by design.
        assert shares[0] > 0.75
        assert shares[4] > 0.75
        assert shares[7] == 0.0
        # Cluster 2 is predominantly outside Paris.
        assert shares[2] < 0.35


class TestExplain:
    def test_explanations_cached(self, small_profile):
        first = small_profile.explain(samples_per_cluster=10)
        second = small_profile.explain(samples_per_cluster=10)
        assert first is second

    def test_summary_text(self, small_profile):
        text = small_profile.summary()
        assert "9 clusters" in text
        assert "surrogate" in text


class TestScan:
    def test_scan_has_peaks_at_6_and_9(self, small_dataset):
        profiler = ICNProfiler()
        result = profiler.scan_cluster_counts(small_dataset, ks=range(2, 13))
        silhouette_peaks = set(result.local_peaks("silhouette"))
        dunn_peaks = set(result.local_peaks("dunn"))
        # Fig. 2: both k = 6 and k = 9 show the high-then-drop signature
        # in at least one of the two indices.
        assert 6 in silhouette_peaks | dunn_peaks
        assert 9 in silhouette_peaks | dunn_peaks


class TestGeneralization:
    def test_surrogate_generalizes(self, small_profile):
        """The Fig. 9 premise: the forest classifies unseen antennas."""
        accuracy = small_profile.generalization_accuracy(test_fraction=0.25)
        assert accuracy > 0.9

    def test_split_fraction_forwarded(self, small_profile):
        a = small_profile.generalization_accuracy(test_fraction=0.5,
                                                  random_state=1)
        assert 0.0 <= a <= 1.0
