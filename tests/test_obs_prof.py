"""Continuous profiler: sampling, window rotation, exports, overhead
budget, and self-metrics."""

import json
import threading
import time

import pytest

from repro.obs.prof import ContinuousProfiler
from repro.obs.registry import MetricsRegistry


class BusyThread:
    """A named thread spinning in a recognizable function."""

    def __init__(self, name="busy-worker"):
        self._stop = threading.Event()
        self.thread = threading.Thread(
            target=self._spin_hot_loop, name=name, daemon=True
        )

    def _spin_hot_loop(self):
        total = 0
        while not self._stop.is_set():
            total += sum(range(200))
        return total

    def __enter__(self):
        self.thread.start()
        return self

    def __exit__(self, *exc_info):
        self._stop.set()
        self.thread.join(timeout=2.0)


class TestConstruction:
    @pytest.mark.parametrize("kwargs,fragment", [
        ({"hz": 0}, "hz"),
        ({"hz": -5}, "hz"),
        ({"window_s": 0}, "window_s"),
        ({"n_windows": 0}, "n_windows"),
        ({"max_overhead": 0.0}, "max_overhead"),
        ({"max_overhead": 1.0}, "max_overhead"),
    ])
    def test_rejects_bad_parameters(self, kwargs, fragment):
        with pytest.raises(ValueError, match=fragment):
            ContinuousProfiler(registry=MetricsRegistry(), **kwargs)


class TestSampling:
    def test_sample_once_captures_busy_named_thread(self):
        prof = ContinuousProfiler(registry=MetricsRegistry())
        with BusyThread(name="busy-worker"):
            time.sleep(0.05)
            for _ in range(5):
                assert prof.sample_once(now=0.0) >= 1
        collapsed = prof.collapsed()
        busy = [s for s in collapsed if s.startswith("thread:busy-worker")]
        assert busy, f"busy thread missing from {list(collapsed)[:5]}"
        assert any("_spin_hot_loop" in s for s in busy)

    def test_stack_is_root_first(self):
        prof = ContinuousProfiler(registry=MetricsRegistry())
        with BusyThread(name="busy-worker"):
            time.sleep(0.05)
            prof.sample_once(now=0.0)
        stacks = [
            s for s in prof.collapsed()
            if s.startswith("thread:busy-worker")
        ]
        frames = stacks[0].split(";")
        assert frames[0] == "thread:busy-worker"
        # run() sits above the target function in a Thread's stack.
        names = [f.split(" ")[0] for f in frames]
        assert names.index("_spin_hot_loop") > names.index("run")

    def test_window_rotation_bounds_history(self):
        prof = ContinuousProfiler(window_s=10.0, n_windows=3,
                                  registry=MetricsRegistry())
        with BusyThread():
            time.sleep(0.05)
            # 6 windows' worth of synthetic time; only 3 retained.
            for i in range(6):
                prof.sample_once(now=float(i) * 10.0)
        stats = prof.stats()
        assert stats["n_windows"] == 3
        assert stats["snapshot_passes"] == 3

    def test_merged_window_selects_trailing_span(self):
        prof = ContinuousProfiler(window_s=10.0, n_windows=6,
                                  registry=MetricsRegistry())
        with BusyThread():
            time.sleep(0.05)
            for i in range(4):
                prof.sample_once(now=float(i) * 10.0)
        all_passes = prof.stats()["snapshot_passes"]
        _, recent_passes = prof._merged(seconds=10.0, now=30.0)
        assert all_passes == 4
        assert recent_passes < all_passes


class TestExports:
    @pytest.fixture()
    def sampled(self):
        prof = ContinuousProfiler(hz=50.0, registry=MetricsRegistry())
        with BusyThread(name="busy-worker"):
            time.sleep(0.05)
            for _ in range(10):
                prof.sample_once(now=0.0)
        return prof

    def test_collapsed_text_format(self, sampled):
        text = sampled.collapsed_text()
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0

    def test_speedscope_document_structure(self, sampled):
        doc = sampled.speedscope()
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "seconds"
        assert len(profile["samples"]) == len(profile["weights"])
        n_frames = len(doc["shared"]["frames"])
        for sample in profile["samples"]:
            assert all(0 <= index < n_frames for index in sample)
        # Weight of a stack sampled k times at hz is k/hz seconds.
        assert profile["endValue"] == pytest.approx(sum(profile["weights"]))
        assert all(w >= 1 / 50.0 for w in profile["weights"])

    def test_export_files(self, sampled, tmp_path):
        speedscope_path = tmp_path / "prof.speedscope.json"
        collapsed_path = tmp_path / "prof.collapsed.txt"
        n_samples = sampled.export_speedscope(speedscope_path)
        n_lines = sampled.export_collapsed(collapsed_path)
        assert n_samples > 0
        assert n_lines > 0
        doc = json.loads(speedscope_path.read_text())
        assert len(doc["profiles"][0]["samples"]) == n_samples
        assert "busy-worker" in json.dumps(doc)

    def test_empty_profiler_exports_cleanly(self, tmp_path):
        prof = ContinuousProfiler(registry=MetricsRegistry())
        assert prof.collapsed() == {}
        assert prof.collapsed_text() == ""
        assert prof.export_collapsed(tmp_path / "empty.txt") == 0
        assert prof.export_speedscope(tmp_path / "empty.json") == 0


class TestLifecycleAndBudget:
    def test_start_stop_and_context_manager(self):
        prof = ContinuousProfiler(hz=200.0, registry=MetricsRegistry())
        assert not prof.running
        with prof:
            assert prof.running
            deadline = time.monotonic() + 2.0
            while (prof.stats()["snapshot_passes"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
        assert not prof.running
        assert prof.stats()["snapshot_passes"] > 0

    def test_start_is_idempotent(self):
        prof = ContinuousProfiler(registry=MetricsRegistry()).start()
        try:
            thread = prof._thread
            assert prof.start()._thread is thread
        finally:
            prof.stop()

    def test_tiny_budget_forces_throttling(self):
        registry = MetricsRegistry()
        prof = ContinuousProfiler(hz=500.0, max_overhead=0.0001,
                                  registry=registry)
        with BusyThread():
            with prof:
                deadline = time.monotonic() + 2.0
                while (prof.stats()["snapshot_passes"] < 2
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
        text = registry.prometheus_text()
        throttled = [
            line for line in text.splitlines()
            if line.startswith("repro_prof_throttled_ticks_total ")
        ]
        assert throttled and float(throttled[0].split()[-1]) > 0

    def test_self_metrics_registered(self):
        registry = MetricsRegistry()
        prof = ContinuousProfiler(registry=registry)
        with BusyThread():
            time.sleep(0.05)
            prof.sample_once(now=0.0)
        text = registry.prometheus_text()
        for name in ("repro_prof_samples_total", "repro_prof_stacks_total",
                     "repro_prof_overhead_ratio",
                     "repro_prof_sample_seconds"):
            assert name in text
