"""Tests for the forecasting models and cluster backtests."""

import numpy as np
import pytest

from repro.forecast.models import (
    HoltWinters,
    SeasonalNaive,
    WEEK_HOURS,
    WeeklyProfile,
    mean_absolute_error,
    normalized_mae,
)
from repro.forecast.evaluate import (
    backtest_all_clusters,
    backtest_cluster,
    best_model_per_cluster,
    cluster_hourly_series,
)


def weekly_series(n_weeks=6, noise=0.0, trend=0.0, rng=None):
    """Synthetic hourly series with known weekly shape."""
    base = np.concatenate([
        np.sin(np.linspace(0, 2 * np.pi, 24)) + 2.0
        if d < 5 else np.full(24, 0.5)
        for d in range(7)
    ])
    series = np.tile(base, n_weeks)
    series = series + trend * np.arange(series.size)
    if noise and rng is not None:
        series = series * rng.lognormal(0.0, noise, series.size)
    return series


class TestSeasonalNaive:
    def test_pure_periodic_is_exact(self):
        series = weekly_series(4)
        model = SeasonalNaive().fit(series)
        forecast = model.forecast(WEEK_HOURS)
        np.testing.assert_allclose(forecast, series[-WEEK_HOURS:])

    def test_horizon_longer_than_season(self):
        series = weekly_series(3)
        forecast = SeasonalNaive().fit(series).forecast(2 * WEEK_HOURS + 5)
        assert forecast.shape == (2 * WEEK_HOURS + 5,)
        np.testing.assert_allclose(forecast[:WEEK_HOURS],
                                   forecast[WEEK_HOURS:2 * WEEK_HOURS])

    def test_too_short_series_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            SeasonalNaive().fit(np.ones(100))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            SeasonalNaive().forecast(5)

    def test_bad_horizon(self):
        model = SeasonalNaive().fit(weekly_series(2))
        with pytest.raises(ValueError, match="horizon"):
            model.forecast(0)


class TestWeeklyProfile:
    def test_pure_periodic_is_exact(self):
        series = weekly_series(5)
        forecast = WeeklyProfile().fit(series).forecast(WEEK_HOURS)
        np.testing.assert_allclose(forecast, series[:WEEK_HOURS], atol=1e-9)

    def test_denoises_better_than_naive(self, rng):
        series = weekly_series(8, noise=0.3, rng=rng)
        train, test = series[:-WEEK_HOURS], series[-WEEK_HOURS:]
        naive = SeasonalNaive().fit(train).forecast(WEEK_HOURS)
        profile = WeeklyProfile().fit(train).forecast(WEEK_HOURS)
        assert normalized_mae(test, profile) < normalized_mae(test, naive)

    def test_level_adjustment(self):
        series = np.concatenate([weekly_series(4), 2.0 * weekly_series(1)])
        forecast = WeeklyProfile().fit(series).forecast(WEEK_HOURS)
        # Recent level doubled; forecast keeps the higher level.
        assert forecast.mean() > 1.3 * weekly_series(1).mean()

    def test_phase_continues_from_series_end(self):
        series = weekly_series(4)[: 4 * WEEK_HOURS - 30]
        forecast = WeeklyProfile().fit(series).forecast(30)
        # The next 30 hours pick up at week-hour (len % 168).
        expected_phase = series.size % WEEK_HOURS
        profile = WeeklyProfile().fit(series)._profile
        np.testing.assert_allclose(
            forecast / forecast.mean(),
            profile[expected_phase:expected_phase + 30]
            / profile[expected_phase:expected_phase + 30].mean(),
            rtol=1e-6,
        )

    def test_fit_with_phase_validation(self):
        model = WeeklyProfile()
        with pytest.raises(ValueError, match="start_week_hour"):
            model.fit_with_phase(weekly_series(2), WEEK_HOURS)


class TestHoltWinters:
    def test_tracks_trend(self):
        series = weekly_series(6, trend=0.005)
        train, test = series[:-WEEK_HOURS], series[-WEEK_HOURS:]
        hw = HoltWinters().fit(train).forecast(WEEK_HOURS)
        naive = SeasonalNaive().fit(train).forecast(WEEK_HOURS)
        assert mean_absolute_error(test, hw) < mean_absolute_error(test, naive)

    def test_periodic_reasonable(self):
        series = weekly_series(6)
        forecast = HoltWinters().fit(series).forecast(WEEK_HOURS)
        assert normalized_mae(series[:WEEK_HOURS], forecast) < 0.15

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="season"):
            HoltWinters(season=1)
        with pytest.raises(ValueError, match="alpha"):
            HoltWinters(alpha=0.0)
        with pytest.raises(ValueError, match="gamma"):
            HoltWinters(gamma=1.0)

    def test_needs_two_seasons(self):
        with pytest.raises(ValueError, match="too short"):
            HoltWinters().fit(np.ones(WEEK_HOURS + 10))


class TestMetrics:
    def test_mae(self):
        assert mean_absolute_error([1, 2, 3], [1, 3, 5]) == pytest.approx(1.0)

    def test_nmae_scale_free(self):
        a = np.array([10.0, 20.0])
        b = np.array([11.0, 19.0])
        assert normalized_mae(a, b) == pytest.approx(
            normalized_mae(10 * a, 10 * b)
        )

    def test_zero_level_rejected(self):
        with pytest.raises(ValueError, match="zero mean"):
            normalized_mae([0.0, 0.0], [1.0, 1.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            mean_absolute_error([1, 2], [1])


class TestClusterBacktests:
    def test_series_extraction(self, small_dataset, small_profile):
        series = cluster_hourly_series(
            small_dataset, small_profile.labels, 0, max_antennas=10
        )
        assert series.shape == (small_dataset.calendar.n_hours,)
        assert np.all(series >= 0)

    def test_backtest_scores_all_models(self, small_dataset, small_profile):
        results = backtest_cluster(
            small_dataset, small_profile.labels, 0, max_antennas=10
        )
        assert {r.model for r in results} == {
            "seasonal_naive", "weekly_profile", "holt_winters"
        }
        assert all(r.nmae >= 0 for r in results)

    def test_commuter_cluster_is_predictable(self, small_dataset, small_profile):
        results = backtest_cluster(
            small_dataset, small_profile.labels, 0, max_antennas=15
        )
        best = min(results, key=lambda r: r.nmae)
        assert best.nmae < 0.5, f"commuter cluster nmae {best.nmae:.2f}"

    def test_best_model_per_cluster(self, small_dataset, small_profile):
        results = backtest_all_clusters(
            small_dataset, small_profile.labels, max_antennas=6
        )
        best = best_model_per_cluster(results)
        assert sorted(best) == sorted(results)
        for cluster, score in best.items():
            assert score.nmae == min(r.nmae for r in results[cluster])

    def test_horizon_guard(self, small_dataset, small_profile):
        with pytest.raises(ValueError, match="horizon"):
            backtest_cluster(
                small_dataset, small_profile.labels, 0,
                horizon=small_dataset.calendar.n_hours,
            )

    def test_empty_cluster_rejected(self, small_dataset, small_profile):
        with pytest.raises(ValueError, match="no member"):
            cluster_hourly_series(small_dataset, small_profile.labels, 55)
