"""Run the executable examples embedded in docstrings."""

import doctest

import pytest

import repro.analysis.environment
import repro.utils.assignment
import repro.utils.rng

MODULES = [
    repro.utils.rng,
    repro.utils.assignment,
    repro.analysis.environment,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "module has no doctests to run"
