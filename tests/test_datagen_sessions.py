"""Tests for the IP-session-level synthesis layer."""

import numpy as np
import pytest

from repro.datagen.sessions import (
    Session,
    SessionGenerator,
    session_statistics,
)


@pytest.fixture(scope="module")
def generator(request):
    small = request.getfixturevalue("small_dataset")
    return SessionGenerator(small)


@pytest.fixture(scope="module")
def small_dataset(request):
    # Re-expose the session-scoped fixture at module scope for reuse.
    from repro.datagen.dataset import generate_dataset
    from tests.conftest import scaled_specs

    return generate_dataset(master_seed=7, specs=scaled_specs(0.1))


@pytest.fixture(scope="module")
def netflix_sessions(generator, small_dataset):
    window = small_dataset.calendar.window(
        np.datetime64("2023-01-09T00", "h"),
        np.datetime64("2023-01-11T23", "h"),
    )
    return generator.sessions_for(0, "Netflix", window), window


class TestSessionsFor:
    def test_sessions_generated(self, netflix_sessions):
        sessions, _ = netflix_sessions
        assert len(sessions) > 10
        assert all(s.service == "Netflix" for s in sessions)
        assert all(s.antenna_id == 0 for s in sessions)

    def test_aggregation_reproduces_hourly(
        self, generator, small_dataset, netflix_sessions
    ):
        sessions, window = netflix_sessions
        aggregated = generator.aggregate_hourly(sessions, window)
        hourly = small_dataset.hourly_service(
            "Netflix", antenna_ids=[0], window=window
        )[0]
        np.testing.assert_allclose(aggregated, hourly, rtol=1e-9)

    def test_deterministic(self, generator, small_dataset):
        window = small_dataset.calendar.window(
            np.datetime64("2023-01-09T00", "h"),
            np.datetime64("2023-01-09T23", "h"),
        )
        a = generator.sessions_for(1, "Spotify", window)
        b = generator.sessions_for(1, "Spotify", window)
        assert len(a) == len(b)
        assert all(
            x.volume_mb == y.volume_mb and x.start == y.start
            for x, y in zip(a, b)
        )

    def test_downlink_split_follows_service(self, netflix_sessions,
                                            small_dataset):
        sessions, _ = netflix_sessions
        expected = small_dataset.catalog["Netflix"].downlink_fraction
        for session in sessions[:20]:
            share = session.downlink_mb / session.volume_mb
            assert share == pytest.approx(expected)

    def test_streaming_sessions_larger_than_messaging(
        self, generator, small_dataset
    ):
        window = small_dataset.calendar.window(
            np.datetime64("2023-01-09T00", "h"),
            np.datetime64("2023-01-11T23", "h"),
        )
        netflix = generator.sessions_for(0, "Netflix", window)
        whatsapp = generator.sessions_for(0, "WhatsApp", window)
        netflix_median = np.median([s.volume_mb for s in netflix])
        whatsapp_median = np.median([s.volume_mb for s in whatsapp])
        assert netflix_median > whatsapp_median

    def test_durations_positive(self, netflix_sessions):
        sessions, _ = netflix_sessions
        assert all(s.duration_s >= 1.0 for s in sessions)


class TestSessionStatistics:
    def test_summary_fields(self, netflix_sessions):
        sessions, _ = netflix_sessions
        stats = session_statistics(sessions)
        assert stats["count"] == len(sessions)
        assert stats["volume_mb_p95"] >= stats["volume_mb_p50"]
        assert 0.9 < stats["downlink_share"] <= 1.0  # Netflix is DL-heavy
        assert stats["duration_s_mean"] > 0

    def test_heavy_tailed_sizes(self, netflix_sessions):
        sessions, _ = netflix_sessions
        stats = session_statistics(sessions)
        # Log-normal flows: p95 well above the median.
        assert stats["volume_mb_p95"] > 3 * stats["volume_mb_p50"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no sessions"):
            session_statistics([])


class TestSessionValidation:
    def test_bad_duration(self):
        with pytest.raises(ValueError, match="duration"):
            Session(0, "X", np.datetime64("2023-01-01T00"), 0.0, 1.0, 0.1)

    def test_negative_volume(self):
        with pytest.raises(ValueError, match="non-negative"):
            Session(0, "X", np.datetime64("2023-01-01T00"), 1.0, -1.0, 0.1)
