"""Tests for the 73-service catalog."""

import numpy as np
import pytest

from repro.datagen.services import (
    Service,
    ServiceCatalog,
    ServiceCategory,
    TemporalClass,
    default_catalog,
)


class TestDefaultCatalog:
    def test_exactly_73_services(self):
        # The paper analyses M = 73 mobile services (Section 4.1).
        assert len(default_catalog()) == 73

    def test_paper_named_services_present(self):
        catalog = default_catalog()
        for name in (
            "Spotify", "SoundCloud", "Deezer", "Apple Music",
            "Mappy", "Google Maps", "Waze", "Transportation Websites",
            "Twitter", "Snapchat", "Giphy", "WhatsApp",
            "Netflix", "Disney+", "Amazon Prime Video", "Canal+",
            "Microsoft Teams", "LinkedIn", "Google Play Store",
            "Shopping Websites", "Sports Websites", "Yahoo",
        ):
            assert name in catalog, name

    def test_unique_names(self):
        names = default_catalog().names
        assert len(set(names)) == len(names)

    def test_popularity_weights_normalized(self):
        weights = default_catalog().popularity_weights()
        assert weights.shape == (73,)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights > 0)

    def test_popularity_heavy_tailed(self):
        # A handful of streaming/social services should dominate volume
        # (the Fig. 1 skew argument).
        weights = np.sort(default_catalog().popularity_weights())[::-1]
        assert weights[:10].sum() > 0.5

    def test_index_of_roundtrip(self):
        catalog = default_catalog()
        for idx in (0, 10, 72):
            assert catalog.index_of(catalog[idx].name) == idx

    def test_index_of_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown service"):
            default_catalog().index_of("MySpace")

    def test_in_category(self):
        catalog = default_catalog()
        music = catalog.in_category(ServiceCategory.MUSIC)
        assert len(music) == 5
        assert all(catalog[j].category == ServiceCategory.MUSIC for j in music)

    def test_every_category_nonempty(self):
        catalog = default_catalog()
        for category in ServiceCategory:
            assert catalog.in_category(category), category

    def test_getitem_by_name(self):
        catalog = default_catalog()
        assert catalog["Spotify"].category == ServiceCategory.MUSIC

    def test_contains(self):
        catalog = default_catalog()
        assert "Waze" in catalog
        assert "NoSuchApp" not in catalog

    def test_commute_services_exist(self):
        catalog = default_catalog()
        commute = [s for s in catalog if s.temporal_class is TemporalClass.COMMUTE]
        assert any(s.name == "Spotify" for s in commute)

    def test_waze_is_post_event(self):
        assert (
            default_catalog()["Waze"].temporal_class is TemporalClass.POST_EVENT
        )


class TestServiceValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            Service("", ServiceCategory.WEB, 1.0, TemporalClass.FLAT)

    def test_rejects_nonpositive_popularity(self):
        with pytest.raises(ValueError, match="popularity"):
            Service("X", ServiceCategory.WEB, 0.0, TemporalClass.FLAT)

    def test_rejects_bad_downlink_fraction(self):
        with pytest.raises(ValueError, match="downlink"):
            Service("X", ServiceCategory.WEB, 1.0, TemporalClass.FLAT,
                    downlink_fraction=1.2)

    def test_catalog_rejects_duplicates(self):
        svc = Service("Dup", ServiceCategory.WEB, 1.0, TemporalClass.FLAT)
        with pytest.raises(ValueError, match="duplicate"):
            ServiceCatalog([svc, svc])

    def test_catalog_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            ServiceCatalog([])
