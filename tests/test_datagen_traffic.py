"""Tests for the traffic synthesizer (totals + hourly consistency)."""

import numpy as np
import pytest

from repro.datagen.environments import EnvironmentType
from repro.datagen.services import TemporalClass


class TestTotals:
    def test_shape(self, small_dataset):
        totals = small_dataset.model.totals()
        assert totals.shape == (small_dataset.n_antennas, 73)

    def test_positive(self, small_dataset):
        assert np.all(small_dataset.model.totals() > 0)

    def test_cached(self, small_dataset):
        assert small_dataset.model.totals() is small_dataset.model.totals()

    def test_deterministic_across_instances(self, small_dataset):
        from repro.datagen.traffic import TrafficModel

        clone = TrafficModel(
            small_dataset.catalog,
            small_dataset.sites,
            small_dataset.antennas,
            small_dataset.calendar,
            master_seed=small_dataset.master_seed,
        )
        np.testing.assert_allclose(clone.totals(), small_dataset.model.totals())

    def test_shares_rows_normalized(self, small_dataset):
        shares = small_dataset.model.service_shares()
        np.testing.assert_allclose(shares.sum(axis=1), 1.0)

    def test_commuter_antennas_skew_music(self, small_dataset):
        shares = small_dataset.model.service_shares()
        arch = small_dataset.archetypes()
        spotify = small_dataset.catalog.index_of("Spotify")
        popularity = small_dataset.catalog.popularity_weights()
        commuters = shares[arch == 0][:, spotify].mean()
        offices = shares[arch == 3][:, spotify].mean()
        assert commuters > popularity[spotify]
        assert offices < popularity[spotify]

    def test_downlink_uplink_partition(self, small_dataset):
        model = small_dataset.model
        np.testing.assert_allclose(
            model.downlink_totals() + model.uplink_totals(), model.totals()
        )
        assert np.all(model.downlink_totals() >= 0)

    def test_volumes_scale_with_environment(self, small_dataset):
        vols = small_dataset.model.volumes()
        env = small_dataset.environment_types()
        airport = np.median([v for v, e in zip(vols, env)
                             if e == EnvironmentType.AIRPORT])
        hotel = np.median([v for v, e in zip(vols, env)
                           if e == EnvironmentType.HOTEL])
        assert airport > hotel


class TestHourly:
    def test_hourly_sums_to_totals(self, small_dataset):
        model = small_dataset.model
        series = model.hourly_service("Spotify", antenna_ids=[0, 5, 9])
        totals = model.totals()
        np.testing.assert_allclose(
            series.sum(axis=1), totals[[0, 5, 9],
                                       small_dataset.catalog.index_of("Spotify")]
        )

    def test_hourly_window_slices(self, small_dataset):
        model = small_dataset.model
        window = small_dataset.temporal_window()
        series = model.hourly_service("Netflix", antenna_ids=[1], window=window)
        assert series.shape == (1, window.stop - window.start)

    def test_hourly_deterministic(self, small_dataset):
        model = small_dataset.model
        a = model.hourly_service("Waze", antenna_ids=[2])
        b = model.hourly_service("Waze", antenna_ids=[2])
        np.testing.assert_array_equal(a, b)

    def test_hourly_nonnegative(self, small_dataset):
        series = small_dataset.model.hourly_service("TikTok", antenna_ids=[0, 1])
        assert np.all(series >= 0)

    def test_unknown_antenna_rejected(self, small_dataset):
        with pytest.raises(KeyError, match="unknown antenna"):
            small_dataset.model.hourly_service("Waze", antenna_ids=[10**6])

    def test_unknown_service_rejected(self, small_dataset):
        with pytest.raises(KeyError, match="unknown service"):
            small_dataset.model.hourly_service("NoSuchApp", antenna_ids=[0])

    def test_hourly_total_close_to_service_sum(self, small_dataset):
        # hourly_total approximates the sum of per-service series; over the
        # full calendar both must total the antenna's volume within noise.
        model = small_dataset.model
        total_series = model.hourly_total(antenna_ids=[3])
        volume = model.totals()[3].sum()
        assert total_series.sum() == pytest.approx(volume, rel=0.05)

    def test_commute_service_peaks_at_commute_hours(self, small_dataset):
        arch = small_dataset.archetypes()
        commuter_ids = np.flatnonzero(arch == 0)[:5]
        model = small_dataset.model
        series = model.hourly_service("Spotify", antenna_ids=commuter_ids)
        hod = small_dataset.calendar.hour_of_day()
        weekday = ~small_dataset.calendar.is_weekend()
        mean = series.mean(axis=0)
        morning = mean[weekday & (hod == 8)].mean()
        night = mean[weekday & (hod == 3)].mean()
        assert morning > 5 * night

    def test_events_reflected_for_stadium_antennas(self, small_dataset):
        arch = small_dataset.archetypes()
        stadium_ids = np.flatnonzero(arch == 8)[:4]
        if stadium_ids.size == 0:
            pytest.skip("no stadium antennas in the small layout")
        model = small_dataset.model
        series = model.hourly_total(antenna_ids=stadium_ids)
        ratio = series.max(axis=1) / np.median(series, axis=1)
        assert np.all(ratio > 3)

    def test_events_attached_to_venue_sites(self, small_dataset):
        model = small_dataset.model
        venue_sites = [
            s.site_id for s in small_dataset.sites
            if s.env_type in (EnvironmentType.STADIUM, EnvironmentType.EXPO)
        ]
        other_sites = [
            s.site_id for s in small_dataset.sites
            if s.env_type not in (EnvironmentType.STADIUM, EnvironmentType.EXPO)
        ]
        assert all(model.events_for_site(sid) for sid in venue_sites)
        assert all(not model.events_for_site(sid) for sid in other_sites)
