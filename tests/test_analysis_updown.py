"""Tests for the downlink/uplink composition analysis."""

import numpy as np
import pytest

from repro.analysis.updown import (
    most_uplink_heavy_services,
    uplink_share_per_cluster,
)
from repro.datagen.services import default_catalog


class TestUplinkShare:
    def test_shares_bounded(self, small_dataset, small_profile):
        shares = uplink_share_per_cluster(
            small_dataset.totals, small_profile.labels, small_dataset.catalog
        )
        assert sorted(shares) == sorted(small_profile.cluster_sizes())
        assert all(0.0 < s < 0.6 for s in shares.values())

    def test_stadiums_more_uplink_than_general(self, small_dataset,
                                               small_profile):
        """Content-sharing venues upload; streaming environments download
        (the paper's photo-upload narrative for stadium clusters)."""
        shares = uplink_share_per_cluster(
            small_dataset.totals, small_profile.labels, small_dataset.catalog
        )
        stadium = max(shares[6], shares[8])
        assert stadium > shares[1], (
            f"stadium UL {stadium:.3f} vs general {shares[1]:.3f}"
        )

    def test_hand_computed(self):
        from repro.datagen.services import (
            Service, ServiceCatalog, ServiceCategory, TemporalClass,
        )

        catalog = ServiceCatalog([
            Service("Down", ServiceCategory.WEB, 1.0, TemporalClass.FLAT,
                    downlink_fraction=1.0),
            Service("Up", ServiceCategory.WEB, 1.0, TemporalClass.FLAT,
                    downlink_fraction=0.0),
        ])
        totals = np.array([[30.0, 10.0], [10.0, 30.0]])
        shares = uplink_share_per_cluster(totals, [0, 1], catalog)
        assert shares[0] == pytest.approx(0.25)
        assert shares[1] == pytest.approx(0.75)

    def test_validation(self, small_dataset, small_profile):
        with pytest.raises(ValueError, match="labels length"):
            uplink_share_per_cluster(
                small_dataset.totals, small_profile.labels[:-1],
                small_dataset.catalog,
            )
        with pytest.raises(ValueError, match="services"):
            uplink_share_per_cluster(
                small_dataset.totals[:, :10], small_profile.labels,
                small_dataset.catalog,
            )


class TestUplinkHeavyServices:
    def test_stadium_uplink_led_by_social(self, small_dataset,
                                          small_profile):
        top = most_uplink_heavy_services(
            small_dataset.totals, small_profile.labels, 6,
            small_dataset.catalog, top=5,
        )
        assert set(top) & {"Snapchat", "Twitter", "WhatsApp", "Instagram",
                           "TikTok", "iCloud"}
        assert sum(top.values()) <= 1.0 + 1e-9

    def test_top_count_respected(self, small_dataset, small_profile):
        top = most_uplink_heavy_services(
            small_dataset.totals, small_profile.labels, 1,
            small_dataset.catalog, top=3,
        )
        assert len(top) == 3

    def test_validation(self, small_dataset, small_profile):
        with pytest.raises(ValueError, match="no member"):
            most_uplink_heavy_services(
                small_dataset.totals, small_profile.labels, 77,
                small_dataset.catalog,
            )
        with pytest.raises(ValueError, match="top"):
            most_uplink_heavy_services(
                small_dataset.totals, small_profile.labels, 1,
                small_dataset.catalog, top=0,
            )
