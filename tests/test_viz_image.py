"""Tests for the PPM image export."""

import numpy as np
import pytest

from repro.viz.image import (
    diverging_colormap,
    matrix_to_image,
    read_ppm,
    save_rsca_figure,
    save_temporal_figure,
    sequential_colormap,
    write_ppm,
)


class TestColormaps:
    def test_diverging_endpoints(self):
        colours = diverging_colormap(np.array([-1.0, 0.0, 1.0]))
        # -1 -> red, 0 -> white, +1 -> blue (paper Fig. 4 semantics).
        assert colours[0][0] > colours[0][2]  # red channel dominates
        np.testing.assert_array_equal(colours[1], [255, 255, 255])
        assert colours[2][2] > colours[2][0]  # blue channel dominates

    def test_diverging_clips(self):
        colours = diverging_colormap(np.array([-5.0, 5.0]))
        np.testing.assert_array_equal(
            colours, diverging_colormap(np.array([-1.0, 1.0]))
        )

    def test_sequential_monotone_darkness(self):
        colours = sequential_colormap(np.linspace(0, 1, 5))
        brightness = colours.astype(int).sum(axis=1)
        assert np.all(np.diff(brightness) < 0)

    def test_uint8_output(self):
        assert diverging_colormap(np.array([0.3])).dtype == np.uint8
        assert sequential_colormap(np.array([0.3])).dtype == np.uint8


class TestPpmRoundtrip:
    def test_write_and_read(self, tmp_path, rng):
        pixels = rng.integers(0, 256, size=(10, 16, 3), dtype=np.uint8)
        path = tmp_path / "img.ppm"
        write_ppm(path, pixels)
        recovered = read_ppm(path)
        np.testing.assert_array_equal(recovered, pixels)

    def test_write_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError, match="uint8"):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4), dtype=np.uint8))

    def test_read_rejects_non_ppm(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"GIF89a...")
        with pytest.raises(ValueError, match="P6"):
            read_ppm(path)


class TestMatrixToImage:
    def test_cell_scaling(self):
        image = matrix_to_image(np.zeros((3, 5)), cell_size=4)
        assert image.shape == (12, 20, 3)

    def test_colormap_selection(self):
        seq = matrix_to_image(np.array([[0.0, 1.0]]), "sequential", 1)
        div = matrix_to_image(np.array([[0.0, 1.0]]), "diverging", 1)
        assert not np.array_equal(seq, div)
        with pytest.raises(ValueError, match="colormap"):
            matrix_to_image(np.zeros((2, 2)), "rainbow")

    def test_cell_size_validated(self):
        with pytest.raises(ValueError, match="cell_size"):
            matrix_to_image(np.zeros((2, 2)), cell_size=0)


class TestFigureExports:
    def test_rsca_figure(self, tmp_path, small_profile):
        path = tmp_path / "fig4.ppm"
        save_rsca_figure(path, small_profile.features, small_profile.labels,
                         max_width=120)
        image = read_ppm(path)
        assert image.shape[0] == 73 * 4  # one row block per service
        assert image.shape[2] == 3

    def test_temporal_figure(self, tmp_path, small_dataset, small_profile):
        from repro.analysis.temporal import cluster_temporal_heatmap

        heatmap = cluster_temporal_heatmap(
            small_dataset, small_profile.labels, 0, max_antennas=10
        )
        path = tmp_path / "fig10_c0.ppm"
        save_temporal_figure(path, heatmap, cell_size=6)
        image = read_ppm(path)
        assert image.shape == (21 * 6, 24 * 6, 3)
