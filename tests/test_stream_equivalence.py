"""Batch/stream equivalence: the acceptance criteria of the subsystem.

Replaying a full dataset through ``repro.stream`` must reproduce the
batch pipeline's T-matrix and RSCA features (allclose, rtol=1e-9), for
multiple generation seeds; and a run that checkpoints mid-stream and
restores must end in exactly the state of an uninterrupted run.
"""

import numpy as np
import pytest

from repro.core.rca import rsca
from repro.datagen.calendar import StudyCalendar
from repro.datagen.dataset import generate_dataset
from repro.stream import (
    IncrementalRSCA,
    SlidingWindowTensor,
    load_state,
    replay_dataset,
    save_state,
)
from tests.conftest import scaled_specs


def make_dataset(seed):
    """Tiny deployment over one week — full replay stays fast."""
    calendar = StudyCalendar(
        np.datetime64("2023-01-09T00", "h"),
        np.datetime64("2023-01-15T23", "h"),
    )
    return generate_dataset(master_seed=seed, specs=scaled_specs(0.05),
                            calendar=calendar)


@pytest.mark.parametrize("seed", [3, 11])
def test_full_replay_reproduces_batch_transforms(seed):
    dataset = make_dataset(seed)
    accumulator = IncrementalRSCA(dataset.service_names)
    for batch in replay_dataset(dataset):
        accumulator.update(batch)

    # streamed T-matrix == batch T-matrix
    np.testing.assert_array_equal(accumulator.antenna_ids(),
                                  np.arange(dataset.n_antennas))
    np.testing.assert_allclose(accumulator.totals(), dataset.totals,
                               rtol=1e-9, atol=0.0)
    # streamed marginals == batch marginals
    np.testing.assert_allclose(accumulator.row_totals(),
                               dataset.totals.sum(axis=1), rtol=1e-9)
    np.testing.assert_allclose(accumulator.col_totals(),
                               dataset.totals.sum(axis=0), rtol=1e-9)
    # streamed RSCA == batch RSCA
    np.testing.assert_allclose(accumulator.rsca(), rsca(dataset.totals),
                               rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("seed", [3, 11])
def test_checkpoint_restore_matches_uninterrupted_run(seed, tmp_path):
    dataset = make_dataset(seed)
    batches = list(replay_dataset(dataset, window=slice(0, 96)))
    kill_at = 41  # mid-stream, deliberately not on a day boundary

    uninterrupted = IncrementalRSCA(dataset.service_names)
    uninterrupted_win = SlidingWindowTensor(dataset.service_names, 24)
    for batch in batches:
        uninterrupted.update(batch)
        uninterrupted_win.update(batch)

    interrupted = IncrementalRSCA(dataset.service_names)
    interrupted_win = SlidingWindowTensor(dataset.service_names, 24)
    for batch in batches[:kill_at]:
        interrupted.update(batch)
        interrupted_win.update(batch)
    totals_path = tmp_path / f"totals_{seed}.npz"
    window_path = tmp_path / f"window_{seed}.npz"
    save_state(totals_path, interrupted.state_dict())
    save_state(window_path, interrupted_win.state_dict())

    resumed = IncrementalRSCA.from_state(load_state(totals_path))
    resumed_win = SlidingWindowTensor.from_state(load_state(window_path))
    for batch in batches[kill_at:]:
        resumed.update(batch)
        resumed_win.update(batch)

    # identical final accumulator state, bit for bit
    assert np.array_equal(uninterrupted.totals(), resumed.totals())
    assert np.array_equal(uninterrupted.row_totals(), resumed.row_totals())
    assert np.array_equal(uninterrupted.col_totals(), resumed.col_totals())
    assert uninterrupted.grand_total == resumed.grand_total
    assert uninterrupted.hours_seen == resumed.hours_seen
    assert uninterrupted.last_hour == resumed.last_hour
    assert np.array_equal(uninterrupted.rsca(), resumed.rsca())
    assert np.array_equal(uninterrupted_win.tensor(), resumed_win.tensor())
    np.testing.assert_array_equal(uninterrupted_win.hours(),
                                  resumed_win.hours())
