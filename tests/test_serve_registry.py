"""Tests for the versioned profile registry and its graceful drain."""

import threading

import numpy as np
import pytest

from repro.serve.registry import ProfileRegistry
from tests.conftest import build_frozen_profile


@pytest.fixture(scope="module")
def frozen_pair():
    """Two profiles that disagree on labels (cluster ids shifted)."""
    first, _ = build_frozen_profile(seed=0)
    second, _ = build_frozen_profile(seed=0, label_shift=10)
    return first, second


class TestInstallation:
    def test_acquire_before_load_raises(self):
        registry = ProfileRegistry()
        with pytest.raises(RuntimeError, match="no profile loaded"):
            with registry.acquire():
                pass

    def test_versions_increment(self, frozen_pair):
        first, second = frozen_pair
        registry = ProfileRegistry()
        assert registry.current_version() is None
        assert registry.load(first) == 1
        assert registry.load(second) == 2
        assert registry.current_version() == 2

    def test_load_rejects_non_profile(self):
        with pytest.raises(TypeError):
            ProfileRegistry().load(np.zeros(3))

    def test_load_path_roundtrip(self, frozen_pair, tmp_path):
        first, _ = frozen_pair
        artifact = tmp_path / "frozen.npz"
        first.save(artifact)
        registry = ProfileRegistry()
        version = registry.load_path(artifact)
        with registry.acquire() as (acquired_version, profile):
            assert acquired_version == version
            assert np.array_equal(profile.labels, first.labels)
            assert profile.service_totals is not None


class TestAcquireAndDrain:
    def test_acquire_pins_old_version_across_swap(self, frozen_pair):
        first, second = frozen_pair
        registry = ProfileRegistry()
        registry.load(first)
        with registry.acquire() as (version, profile):
            registry.load(second)
            # The pinned pair must stay the old version.
            assert version == 1
            assert np.array_equal(profile.labels, first.labels)
        assert registry.current_version() == 2

    def test_drain_waits_for_in_flight_reader(self, frozen_pair):
        first, second = frozen_pair
        registry = ProfileRegistry()
        registry.load(first)

        holding = threading.Event()
        release = threading.Event()

        def reader():
            with registry.acquire():
                holding.set()
                release.wait(5.0)

        thread = threading.Thread(target=reader)
        thread.start()
        assert holding.wait(5.0)
        registry.load(second)
        assert registry.drain(1, timeout=0.05) is False  # still held
        assert registry.in_flight() == 1
        release.set()
        assert registry.drain(1, timeout=5.0) is True
        thread.join(5.0)
        assert registry.in_flight() == 0

    def test_drain_of_unknown_version_is_immediate(self, frozen_pair):
        first, _ = frozen_pair
        registry = ProfileRegistry()
        registry.load(first)
        registry.load(first)
        assert registry.drain(1, timeout=0.01) is True
        assert registry.drain(999, timeout=0.01) is True

    def test_drain_of_current_version_rejected(self, frozen_pair):
        first, _ = frozen_pair
        registry = ProfileRegistry()
        registry.load(first)
        with pytest.raises(ValueError, match="still current"):
            registry.drain(1)

    def test_load_with_drain_timeout_blocks_until_released(self, frozen_pair):
        first, second = frozen_pair
        registry = ProfileRegistry()
        registry.load(first)
        with registry.acquire():
            # Reader in flight: the swap itself must not deadlock, the
            # drain wait simply times out.
            version = registry.load(second, drain_timeout=0.05)
        assert version == 2


class TestClusterSummaries:
    def test_summary_shape_and_occupancy(self, frozen_pair):
        first, _ = frozen_pair
        registry = ProfileRegistry()
        registry.load(first)
        summary = registry.cluster_summaries()
        assert summary["version"] == 1
        assert summary["n_clusters"] == first.n_clusters
        assert summary["n_antennas"] == first.labels.size
        assert len(summary["clusters"]) == first.n_clusters
        total_occupancy = sum(c["occupancy"] for c in summary["clusters"])
        assert total_occupancy == first.labels.size
        shares = [c["share"] for c in summary["clusters"]]
        assert sum(shares) == pytest.approx(1.0)
        for entry in summary["clusters"]:
            assert len(entry["centroid"]) == len(first.service_names)
        row = int(np.flatnonzero(first.clusters ==
                                 summary["clusters"][0]["cluster"])[0])
        assert summary["clusters"][0]["centroid"] == pytest.approx(
            list(first.centroids[row])
        )
