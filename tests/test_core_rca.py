"""Tests for the RCA/RSCA transforms (paper Eqs. 1, 2, 5)."""

import numpy as np
import pytest

from repro.core.rca import (
    feature_histograms,
    normalized_traffic,
    outdoor_rca,
    outdoor_rsca,
    rca,
    rsca,
    rsca_from_rca,
)


@pytest.fixture()
def toy_totals():
    # 3 antennas x 2 services with hand-computable RCA.
    return np.array([
        [90.0, 10.0],
        [50.0, 50.0],
        [10.0, 90.0],
    ])


class TestRca:
    def test_hand_computed_values(self, toy_totals):
        values = rca(toy_totals)
        # Service totals are both 150 of a 300 grand total -> share 0.5.
        np.testing.assert_allclose(values[:, 0], [1.8, 1.0, 0.2])
        np.testing.assert_allclose(values[:, 1], [0.2, 1.0, 1.8])

    def test_uniform_antenna_has_unit_rca(self):
        totals = np.full((4, 5), 7.0)
        np.testing.assert_allclose(rca(totals), 1.0)

    def test_rca_weighted_mean_is_one(self, toy_totals):
        # sum_j share_j * RCA_ij = 1 for every antenna, by construction.
        values = rca(toy_totals)
        service_share = toy_totals.sum(axis=0) / toy_totals.sum()
        np.testing.assert_allclose(values @ service_share, 1.0)

    def test_zero_service_everywhere_yields_zero(self):
        totals = np.array([[5.0, 0.0], [3.0, 0.0]])
        values = rca(totals)
        np.testing.assert_allclose(values[:, 1], 0.0)
        np.testing.assert_allclose(values[:, 0], 1.0)

    def test_zero_antenna_rejected(self):
        with pytest.raises(ValueError, match="zero total traffic"):
            rca(np.array([[1.0, 1.0], [0.0, 0.0]]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            rca(np.array([[1.0, -1.0]]))

    def test_scale_invariance(self, toy_totals):
        # RCA is a share-of-share ratio: global rescaling cannot change it.
        np.testing.assert_allclose(rca(toy_totals), rca(toy_totals * 1e6))


class TestRsca:
    def test_range(self, small_dataset):
        values = rsca(small_dataset.totals)
        assert values.min() >= -1.0
        assert values.max() <= 1.0

    def test_sign_semantics(self):
        assert rsca_from_rca(np.array([2.0])) > 0  # over-utilization
        assert rsca_from_rca(np.array([0.5])) < 0  # under-utilization
        assert rsca_from_rca(np.array([1.0])) == pytest.approx(0.0)

    def test_symmetry(self):
        # RCA = x and RCA = 1/x map to opposite RSCA values.
        x = np.array([3.0])
        a = rsca_from_rca(x)
        b = rsca_from_rca(1.0 / x)
        np.testing.assert_allclose(a, -b)

    def test_monotonic(self):
        values = rsca_from_rca(np.linspace(0.0, 10.0, 50))
        assert np.all(np.diff(values) > 0)

    def test_negative_rca_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            rsca_from_rca(np.array([-0.5]))

    def test_composition(self, toy_totals):
        np.testing.assert_allclose(rsca(toy_totals),
                                   rsca_from_rca(rca(toy_totals)))


class TestOutdoorRca:
    def test_identical_mix_gives_unit_rca(self):
        indoor = np.array([[10.0, 30.0], [20.0, 60.0]])
        outdoor = np.array([[1.0, 3.0]])  # same 1:3 mix as indoor aggregate
        np.testing.assert_allclose(outdoor_rca(outdoor, indoor), 1.0)

    def test_reference_is_indoor_aggregate(self):
        indoor = np.array([[90.0, 10.0]])
        outdoor = np.array([[50.0, 50.0]])
        values = outdoor_rca(outdoor, indoor)
        # Outdoor uses service 1 at 0.5 share vs 0.1 indoors -> RCA 5.
        np.testing.assert_allclose(values, [[0.5 / 0.9, 5.0]])

    def test_rsca_range(self, small_dataset):
        antennas, totals = small_dataset.outdoor(count=50)
        values = outdoor_rsca(totals, small_dataset.totals)
        assert values.shape == (50, 73)
        assert values.min() >= -1.0 and values.max() <= 1.0

    def test_service_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="number of services"):
            outdoor_rca(np.ones((2, 3)), np.ones((2, 4)))

    def test_zero_outdoor_antenna_rejected(self):
        with pytest.raises(ValueError, match="zero total"):
            outdoor_rca(np.zeros((1, 2)), np.ones((1, 2)))


class TestNormalizedTraffic:
    def test_peak_is_one(self, toy_totals):
        values = normalized_traffic(toy_totals)
        assert values.max() == pytest.approx(1.0)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError, match="identically zero"):
            normalized_traffic(np.zeros((2, 2)))


class TestFeatureHistograms:
    def test_keys_and_shapes(self, small_dataset):
        hists = feature_histograms(small_dataset.totals, bins=30)
        for key in ("normalized", "rca", "rsca"):
            counts, edges = hists[key]
            assert counts.shape == (30,)
            assert edges.shape == (31,)
        assert hists["max_rca"] > 1.0

    def test_fig1_shape_claims(self, small_dataset):
        """The Fig. 1 argument: normalized traffic collapses near zero,
        RCA is skewed with a long over-utilization tail, RSCA is balanced."""
        hists = feature_histograms(small_dataset.totals, bins=40)
        norm_counts, norm_edges = hists["normalized"]
        # Most normalized-traffic mass in the first bin.
        assert norm_counts[0] > 0.8 * norm_counts.sum()
        # RCA tail: max well beyond the bulk at ~1.
        assert hists["max_rca"] > 5.0
        rsca_counts, rsca_edges = hists["rsca"]
        # RSCA spreads mass across both halves of [-1, 1].
        negative = rsca_counts[rsca_edges[:-1] < 0].sum()
        positive = rsca_counts[rsca_edges[:-1] >= 0].sum()
        assert negative > 0.15 * rsca_counts.sum()
        assert positive > 0.15 * rsca_counts.sum()

    def test_antenna_subset(self, small_dataset):
        hists = feature_histograms(small_dataset.totals,
                                   antenna_indices=np.arange(10))
        assert hists["rca"][0].sum() == 10 * 73
