"""Tests for the repro-icn command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datagen.dataset import TrafficDataset
from tests.conftest import scaled_specs


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    """A small dataset written to disk for the CLI to consume."""
    from repro.datagen.dataset import generate_dataset

    path = tmp_path_factory.mktemp("cli") / "small.npz"
    generate_dataset(master_seed=2, specs=scaled_specs(0.08)).save(path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "out.npz", "--seed", "3"])
        assert args.output == "out.npz"
        assert args.seed == 3

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_generate_writes_file(self, tmp_path, capsys, monkeypatch):
        # Patch the generator to the small layout for speed.
        import repro.cli as cli
        from repro.datagen.dataset import generate_dataset as real_generate

        monkeypatch.setattr(
            cli, "generate_dataset",
            lambda master_seed: real_generate(master_seed,
                                              specs=scaled_specs(0.05)),
        )
        out = tmp_path / "data.npz"
        assert main(["generate", str(out), "--seed", "1"]) == 0
        assert out.exists()
        loaded = TrafficDataset.load(out)
        assert loaded.n_services == 73
        assert "wrote" in capsys.readouterr().out

    def test_profile_from_file(self, dataset_file, capsys):
        assert main(["profile", "--dataset", dataset_file, "--align"]) == 0
        out = capsys.readouterr().out
        assert "ICN profile" in out
        assert "9 clusters" in out

    def test_scan_from_file(self, dataset_file, capsys):
        assert main(["scan", "--dataset", dataset_file, "--max-k", "6"]) == 0
        out = capsys.readouterr().out
        assert "silhouette" in out

    def test_figure_fig1(self, dataset_file, capsys):
        assert main(["figure", "fig1", "--dataset", dataset_file]) == 0
        out = capsys.readouterr().out
        assert "max RCA" in out

    def test_figure_fig3(self, dataset_file, capsys):
        assert main(["figure", "fig3", "--dataset", dataset_file,
                     "--align"]) == 0
        out = capsys.readouterr().out
        assert "group" in out

    def test_figure_fig6(self, dataset_file, capsys):
        assert main(["figure", "fig6", "--dataset", dataset_file,
                     "--align"]) == 0
        out = capsys.readouterr().out
        assert "cluster" in out

    def test_figure_fig9(self, dataset_file, capsys):
        assert main(["figure", "fig9", "--dataset", dataset_file, "--align",
                     "--outdoor", "200"]) == 0
        out = capsys.readouterr().out
        assert "%" in out


class TestNewCommands:
    def test_validate(self, dataset_file, capsys):
        # The scaled dataset fails the Table 1 count check (expected) but
        # the command runs and reports.
        code = main(["validate", "--dataset", dataset_file])
        out = capsys.readouterr().out
        assert "checks passed" in out
        assert code in (0, 1)

    def test_operations(self, dataset_file, capsys):
        assert main(["operations", "--dataset", dataset_file,
                     "--align"]) == 0
        out = capsys.readouterr().out
        assert "slice" in out
        assert "energy saving" in out
        assert "caching" in out

    def test_figure_fig7_fig8(self, dataset_file, capsys):
        assert main(["figure", "fig7", "--dataset", dataset_file,
                     "--align"]) == 0
        out7 = capsys.readouterr().out
        assert "cluster 0:" in out7
        assert main(["figure", "fig8", "--dataset", dataset_file,
                     "--align"]) == 0
        out8 = capsys.readouterr().out
        assert "metro:" in out8

    def test_figure_fig11(self, dataset_file, capsys):
        assert main(["figure", "fig11", "--dataset", dataset_file,
                     "--align"]) == 0
        out = capsys.readouterr().out
        assert "Spotify" in out
        assert "Microsoft Teams" in out

    def test_report_to_file(self, dataset_file, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--dataset", dataset_file, "--align",
                     "--output", str(out), "--shap-samples", "5"]) == 0
        text = out.read_text()
        assert text.startswith("# Indoor cellular demand profile")
        assert "Cluster inventory" in text

    def test_serve_answers_requests_then_exits(self, tmp_path, capsys):
        import json
        import socket
        import threading
        import time
        import urllib.request

        from tests.conftest import build_frozen_profile

        frozen, _ = build_frozen_profile()
        artifact = tmp_path / "frozen.npz"
        frozen.save(artifact)

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        answers = []

        def poke():
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                try:
                    with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/healthz", timeout=2.0
                    ) as response:
                        answers.append(json.loads(response.read()))
                        return
                except OSError:
                    time.sleep(0.05)

        client = threading.Thread(target=poke)
        client.start()
        code = main(["serve", "--frozen", str(artifact),
                     "--port", str(port), "--max-requests", "1"])
        client.join(25.0)
        assert code == 0
        assert answers and answers[0]["status"] == "ok"
        out = capsys.readouterr().out
        assert "serving profile version 1" in out
        assert "requests served" in out

    def test_bench_serve_writes_report(self, tmp_path, capsys):
        from tests.conftest import build_frozen_profile

        frozen, _ = build_frozen_profile()
        artifact = tmp_path / "frozen.npz"
        frozen.save(artifact)
        output = tmp_path / "BENCH_serve.json"
        assert main(["bench-serve", "--frozen", str(artifact),
                     "--queries", "120", "--workers", "1,2",
                     "--max-batch", "16", "--hot-set", "16",
                     "--output", str(output)]) == 0
        import json

        report = json.loads(output.read_text())
        assert report["unbatched"]["qps"] > 0
        assert len(report["batched"]) == 2
        assert report["cached"]["hit_rate"] > 0
        assert "speedup" in report
        out = capsys.readouterr().out
        assert "micro-batching speedup" in out

    def test_bench_forest_writes_report(self, tmp_path, capsys):
        from tests.conftest import build_frozen_profile

        frozen, _ = build_frozen_profile()
        artifact = tmp_path / "frozen.npz"
        frozen.save(artifact)
        output = tmp_path / "BENCH_forest.json"
        assert main(["bench-forest", "--frozen", str(artifact),
                     "--queries", "64", "--batch-sizes", "1,16",
                     "--repeats", "1", "--output", str(output)]) == 0
        import json

        report = json.loads(output.read_text())
        assert report["equivalence"]["bit_identical"] is True
        assert len(report["batches"]) == 2
        assert report["speedup"] > 0
        assert report["fused_volume"]["speedup"] > 0
        out = capsys.readouterr().out
        assert "compiled-kernel speedup" in out

    def test_bench_forest_missing_artifact_errors(self, tmp_path, capsys):
        missing = tmp_path / "nope.npz"
        assert main(["bench-forest", "--frozen", str(missing),
                     "--output", ""]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_obs_trace_export(self, dataset_file, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(["obs", "trace-export", "--dataset", dataset_file,
                     "--align", "--shap-samples", "3",
                     "--output", str(trace_path),
                     "--metrics-output", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "spans over" in out

        trace = json.loads(trace_path.read_text())
        names = {event["name"] for event in trace["traceEvents"]}
        assert {"pipeline.rca", "pipeline.cluster", "pipeline.surrogate",
                "pipeline.shap"} <= names
        for event in trace["traceEvents"]:
            assert event["ph"] == "X"

        metrics = json.loads(metrics_path.read_text())
        stages = {series["labels"]["stage"]
                  for series in metrics["repro_stage_seconds"]["series"]}
        assert "pipeline.rca" in stages

    def test_obs_dump_prometheus(self, dataset_file, capsys):
        assert main(["obs", "dump", "--dataset", dataset_file,
                     "--shap-samples", "0"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_stage_seconds histogram" in out
        assert 'repro_stage_seconds_bucket{stage="pipeline.rca"' in out

    def test_obs_dump_json_to_file(self, dataset_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "metrics.json"
        assert main(["obs", "dump", "--dataset", dataset_file,
                     "--shap-samples", "0", "--format", "json",
                     "--output", str(out_path)]) == 0
        snapshot = json.loads(out_path.read_text())
        assert snapshot["repro_stage_seconds"]["type"] == "histogram"

    def test_stream(self, dataset_file, tmp_path, capsys):
        checkpoint = tmp_path / "stream.npz"
        assert main(["stream", "--dataset", dataset_file, "--align",
                     "--days", "2", "--limit", "40", "--report-every", "24",
                     "--window-hours", "24",
                     "--checkpoint", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        assert "frozen profile: 9 clusters" in out
        assert "replaying 48 hourly batches of 40 antennas" in out
        assert "occupancy" in out
        assert "drift @" in out
        assert "antenna-hours ingested: 1920" in out
        assert checkpoint.exists()
