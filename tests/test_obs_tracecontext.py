"""Trace context propagation: traceparent round trips, explicit parents,
cross-process span assembly, and greppable Chrome exports."""

import json

import pytest

from repro.obs.trace import (
    SpanRecord,
    TraceContext,
    TraceStore,
    current_context,
    disable_tracing,
    enable_tracing,
    extract,
    inject,
    span,
)


@pytest.fixture()
def traced():
    store = enable_tracing(capacity=256)
    try:
        yield store
    finally:
        disable_tracing()
        store.clear()


class TestTraceparentFormat:
    def test_round_trip_is_exact(self):
        ctx = TraceContext(trace_id="00000000abcd", span_id="00000000ef12")
        header = ctx.to_traceparent()
        assert header == (
            "00-0000000000000000000000000000abcd-000000000000ef12-01"
        )
        back = TraceContext.from_traceparent(header)
        assert back == ctx

    def test_wide_foreign_ids_survive(self):
        # A 32-hex trace id from a W3C-instrumented foreign client must
        # not be truncated by canonicalization.
        header = (
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
        )
        ctx = TraceContext.from_traceparent(header)
        assert ctx is not None
        assert ctx.trace_id == "4bf92f3577b34da6a3ce929d0e0e4736"
        assert ctx.to_traceparent() == header

    def test_unsampled_flag(self):
        ctx = TraceContext(trace_id="abc123", span_id="def456",
                           sampled=False)
        assert ctx.to_traceparent().endswith("-00")
        back = TraceContext.from_traceparent(ctx.to_traceparent())
        assert back is not None and back.sampled is False

    @pytest.mark.parametrize("header", [
        "",
        "not-a-traceparent",
        "00-zz92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        # version ff is explicitly invalid
        "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        # all-zero trace / span ids are invalid
        "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
        "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
        # truncated fields
        "00-4bf92f3577b34da6-00f067aa0ba902b7-01",
    ])
    def test_malformed_rejected(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_invalid_ids_raise(self):
        with pytest.raises(ValueError, match="lowercase hex"):
            TraceContext(trace_id="XYZ", span_id="abc")
        with pytest.raises(ValueError, match="lowercase hex"):
            TraceContext(trace_id="abc", span_id="")


class TestInjectExtract:
    def test_inject_noop_without_context(self):
        disable_tracing()
        headers = {}
        inject(headers)
        assert headers == {}

    def test_inject_extract_round_trip(self, traced):
        with span("origin") as record:
            headers = {}
            inject(headers)
            assert "traceparent" in headers
        ctx = extract(headers)
        assert ctx is not None
        assert ctx.trace_id == record.trace_id
        assert ctx.span_id == record.span_id

    def test_extract_is_case_insensitive(self, traced):
        with span("origin"):
            headers = inject({})
        upper = {"Traceparent": headers["traceparent"]}
        assert extract(upper) is not None

    def test_extract_ignores_malformed(self):
        assert extract({"traceparent": "garbage"}) is None
        assert extract({}) is None

    def test_current_context_none_without_span(self):
        disable_tracing()
        assert current_context() is None


class TestExplicitParent:
    def test_span_parents_onto_context(self, traced):
        with span("client.request") as client:
            ctx = current_context()
        with span("serve.http", parent=ctx) as server:
            pass
        assert server.trace_id == client.trace_id
        assert server.parent_id == client.span_id

    def test_parent_overrides_thread_local_stack(self, traced):
        foreign = TraceContext(trace_id="deadbeef0001", span_id="beef00000002")
        with span("local.root"):
            with span("joined", parent=foreign) as joined:
                pass
        assert joined.trace_id == "deadbeef0001"
        assert joined.parent_id == "beef00000002"

    def test_children_nest_under_parented_span(self, traced):
        foreign = TraceContext(trace_id="deadbeef0001", span_id="beef00000002")
        with span("joined", parent=foreign) as joined:
            with span("inner") as inner:
                pass
        assert inner.trace_id == "deadbeef0001"
        assert inner.parent_id == joined.span_id


class TestSpanSerialization:
    def test_to_from_dict_round_trip(self, traced):
        with span("stage", rows=3) as record:
            pass
        clone = SpanRecord.from_dict(record.to_dict())
        assert clone == record

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a serialized span"):
            SpanRecord.from_dict({"name": "x"})


class TestCrossProcessAssembly:
    def _child_store(self, parent_ctx):
        """Simulate a child process exporting spans parented on us."""
        child = TraceStore(capacity=16)
        record = SpanRecord(
            name="child.work",
            trace_id=parent_ctx.trace_id,
            span_id="c" * 12,
            parent_id=parent_ctx.span_id,
            thread_id=1,
            start_s=0.0,
            duration_s=0.5,
            pid=99999,
        )
        child.add(record)
        return child, record

    def test_merge_payload_keeps_parent_links(self, traced):
        with span("parent.dispatch") as parent:
            ctx = current_context()
        child, child_record = self._child_store(ctx)
        added = traced.merge(child.to_payload())
        assert added == 1
        merged = {s.span_id: s for s in traced.spans()}
        assert merged[child_record.span_id].parent_id == parent.span_id
        assert merged[child_record.span_id].trace_id == parent.trace_id
        assert merged[child_record.span_id].pid == 99999

    def test_merge_is_idempotent(self, traced):
        with span("parent.dispatch"):
            ctx = current_context()
        child, _ = self._child_store(ctx)
        payload = child.to_payload()
        assert traced.merge(payload) == 1
        assert traced.merge(payload) == 0

    def test_export_spans_merge_file_round_trip(self, traced, tmp_path):
        with span("parent.dispatch"):
            ctx = current_context()
        child, child_record = self._child_store(ctx)
        path = tmp_path / "child_spans.json"
        assert child.export_spans(path) == 1
        assert traced.merge_file(path) == 1
        assert child_record.span_id in {
            s.span_id for s in traced.spans()
        }

    def test_merge_rejects_bad_payload(self, traced):
        with pytest.raises(ValueError, match="spans"):
            traced.merge({"spans": "nope"})


class TestChromeExport:
    def test_events_carry_ids_and_parent_links(self, traced, tmp_path):
        with span("root"):
            with span("leaf"):
                pass
        path = tmp_path / "trace.json"
        count = traced.export_chrome(path)
        assert count == 2
        trace = json.loads(path.read_text())
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        root, leaf = by_name["root"], by_name["leaf"]
        for event in (root, leaf):
            assert event["args"]["trace_id"]
            assert event["args"]["span_id"]
        assert leaf["args"]["parent_id"] == root["args"]["span_id"]
        assert "parent_id" not in root["args"]

    def test_merged_child_keeps_its_pid_lane(self, traced, tmp_path):
        with span("parent.dispatch") as parent:
            ctx = current_context()
        child_record = SpanRecord(
            name="child.work", trace_id=ctx.trace_id, span_id="c" * 12,
            parent_id=ctx.span_id, thread_id=1, start_s=0.0,
            duration_s=0.5, pid=42424,
        )
        traced.merge([child_record])
        path = tmp_path / "trace.json"
        traced.export_chrome(path)
        events = json.loads(path.read_text())["traceEvents"]
        child_events = [e for e in events if e["name"] == "child.work"]
        assert child_events[0]["pid"] == 42424
        assert child_events[0]["args"]["parent_id"] == parent.span_id
