"""Fault-plan semantics: budgets, matching, determinism, and the sites."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.obs.registry import MetricsRegistry, get_registry, set_registry
from repro.relia import (
    FAULT_KINDS,
    FaultError,
    FaultPlan,
    FaultRule,
    WorkerCrash,
    active_plan,
    fault_point,
    inject,
    maybe_truncate_file,
    perturb_hourly_stream,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = get_registry()
    registry = MetricsRegistry()
    set_registry(registry)
    yield registry
    set_registry(previous)


def fake_batch(hour: str):
    return SimpleNamespace(hour=np.datetime64(hour, "h"))


# ----------------------------------------------------------------------
# Rule validation
# ----------------------------------------------------------------------


def test_rule_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultRule(site="x", kind="meteor_strike")


@pytest.mark.parametrize("kwargs", [
    {"times": 0},
    {"probability": 0.0},
    {"probability": 1.5},
    {"skip": -1},
    {"fraction": 1.0},
])
def test_rule_rejects_bad_parameters(kwargs):
    with pytest.raises(ValueError):
        FaultRule(site="x", kind="io_error", **kwargs)


def test_every_declared_kind_constructs():
    for kind in FAULT_KINDS:
        FaultRule(site="x", kind=kind)


# ----------------------------------------------------------------------
# Firing semantics
# ----------------------------------------------------------------------


def test_times_budget_is_burned():
    plan = FaultPlan().add("s", "io_error", times=2)
    assert plan.fire("s", ("io_error",)) is not None
    assert plan.fire("s", ("io_error",)) is not None
    assert plan.fire("s", ("io_error",)) is None
    assert plan.injected_total("s", "io_error") == 2


def test_times_none_fires_forever():
    plan = FaultPlan().add("s", "io_error", times=None)
    for _ in range(10):
        assert plan.fire("s", ("io_error",)) is not None
    assert plan.injected_total() == 10


def test_skip_lets_leading_calls_pass():
    plan = FaultPlan().add("s", "io_error", times=1, skip=2)
    assert plan.fire("s", ("io_error",)) is None
    assert plan.fire("s", ("io_error",)) is None
    assert plan.fire("s", ("io_error",)) is not None


def test_match_filters_on_attributes():
    plan = FaultPlan().add("s", "io_error", times=None, hour="2023-01-09T05")
    assert plan.fire("s", ("io_error",), hour="2023-01-09T04") is None
    assert plan.fire("s", ("io_error",), hour="2023-01-09T05") is not None
    # Attribute comparison is on string forms, so datetimes work too.
    assert plan.fire(
        "s", ("io_error",), hour=np.datetime64("2023-01-09T05", "h")
    ) is not None


def test_site_and_kind_must_both_match():
    plan = FaultPlan().add("a", "io_error")
    assert plan.fire("b", ("io_error",)) is None
    assert plan.fire("a", ("crash",)) is None
    assert plan.fire("a", ("io_error", "crash")) is not None


def test_probability_sequence_is_seed_deterministic():
    def firing_pattern(seed):
        plan = FaultPlan(seed=seed).add(
            "s", "io_error", times=None, probability=0.5
        )
        return [plan.fire("s", ("io_error",)) is not None
                for _ in range(32)]

    pattern = firing_pattern(seed=123)
    assert firing_pattern(seed=123) == pattern
    assert any(pattern) and not all(pattern)
    assert firing_pattern(seed=124) != pattern


def test_fire_increments_injection_counter(fresh_registry):
    plan = FaultPlan().add("s", "io_error", times=1)
    plan.fire("s", ("io_error",))
    family = fresh_registry.get("repro_faults_injected_total")
    assert family.labels(site="s", kind="io_error").value == 1


# ----------------------------------------------------------------------
# Installation
# ----------------------------------------------------------------------


def test_inject_installs_and_uninstalls():
    plan = FaultPlan()
    assert active_plan() is None
    with inject(plan):
        assert active_plan() is plan
    assert active_plan() is None


def test_inject_rejects_nesting():
    with inject(FaultPlan()):
        with pytest.raises(RuntimeError, match="already installed"):
            with inject(FaultPlan()):
                pass
    assert active_plan() is None


def test_inject_uninstalls_on_error():
    with pytest.raises(KeyError):
        with inject(FaultPlan()):
            raise KeyError("boom")
    assert active_plan() is None


# ----------------------------------------------------------------------
# fault_point
# ----------------------------------------------------------------------


def test_fault_point_is_noop_without_plan():
    fault_point("anywhere", hour="5")


def test_fault_point_raises_typed_errors():
    plan = FaultPlan().add("s", "io_error", times=1).add("s", "crash", times=1)
    with inject(plan):
        with pytest.raises(FaultError):
            fault_point("s")
        with pytest.raises(WorkerCrash):
            fault_point("s")
        fault_point("s")  # both budgets burned


def test_fault_error_is_an_os_error():
    # Retry policies treat injected I/O faults as transient OSErrors.
    assert issubclass(FaultError, OSError)


# ----------------------------------------------------------------------
# maybe_truncate_file
# ----------------------------------------------------------------------


def test_truncate_keeps_leading_fraction(tmp_path):
    target = tmp_path / "blob.bin"
    target.write_bytes(bytes(range(100)))
    plan = FaultPlan().add("disk", "truncate", times=1, fraction=0.25)
    with inject(plan):
        assert maybe_truncate_file(target, "disk") is True
        assert maybe_truncate_file(target, "disk") is False  # budget burned
    assert target.read_bytes() == bytes(range(25))


def test_truncate_is_noop_without_plan(tmp_path):
    target = tmp_path / "blob.bin"
    target.write_bytes(b"intact")
    assert maybe_truncate_file(target, "disk") is False
    assert target.read_bytes() == b"intact"


# ----------------------------------------------------------------------
# perturb_hourly_stream
# ----------------------------------------------------------------------

HOURS = [f"2023-01-09T{h:02d}" for h in range(6)]


def replayed_hours(plan):
    batches = [fake_batch(h) for h in HOURS]
    if plan is None:
        return [str(b.hour) for b in perturb_hourly_stream(iter(batches))]
    with inject(plan):
        return [str(b.hour) for b in perturb_hourly_stream(iter(batches))]


def test_perturb_passthrough_without_plan():
    assert replayed_hours(None) == HOURS


def test_perturb_duplicate_redelivers_hour():
    plan = FaultPlan().add("stream.feed", "duplicate", hour=HOURS[2])
    assert replayed_hours(plan) == (
        HOURS[:3] + [HOURS[2]] + HOURS[3:]
    )


def test_perturb_drop_swallows_hour():
    plan = FaultPlan().add("stream.feed", "drop", hour=HOURS[2])
    assert replayed_hours(plan) == HOURS[:2] + HOURS[3:]


def test_perturb_delay_reorders_past_successor():
    plan = FaultPlan().add("stream.feed", "delay", hour=HOURS[2])
    assert replayed_hours(plan) == [
        HOURS[0], HOURS[1], HOURS[3], HOURS[2], HOURS[4], HOURS[5]
    ]


def test_perturb_delayed_final_batch_still_delivered():
    plan = FaultPlan().add("stream.feed", "delay", hour=HOURS[-1])
    assert replayed_hours(plan) == HOURS  # nothing after it to swap with
