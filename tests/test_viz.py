"""Tests for the terminal figure renderers."""

import numpy as np
import pytest

from repro.explain.beeswarm import ClusterExplanation, ServiceImportance
from repro.viz.render import (
    render_beeswarm_table,
    render_dendrogram_summary,
    render_distribution,
    render_heatmap,
    render_histogram,
    render_rsca_heatmap,
    render_sankey,
    render_scan,
)


class TestHistogram:
    def test_renders_bars(self):
        counts = np.array([1, 5, 2])
        edges = np.array([0.0, 1.0, 2.0, 3.0])
        out = render_histogram(counts, edges, title="demo")
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 4
        assert "#" in lines[2]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="edges"):
            render_histogram(np.array([1, 2]), np.array([0.0, 1.0]))


class TestHeatmap:
    def test_shape_and_labels(self):
        values = np.linspace(0, 1, 48).reshape(2, 24)
        out = render_heatmap(values, row_labels=["mon", "tue"], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert lines[1].startswith("mon")
        assert len(lines[1]) == len("mon ") + 24

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            render_heatmap(np.ones(5))

    def test_label_count_checked(self):
        with pytest.raises(ValueError, match="row labels"):
            render_heatmap(np.ones((2, 3)), row_labels=["a"])


class TestRscaHeatmap:
    def test_renders_all_services(self, rng):
        matrix = rng.uniform(-1, 1, size=(30, 5))
        labels = rng.integers(0, 3, size=30)
        out = render_rsca_heatmap(matrix, labels, [f"s{i}" for i in range(5)])
        assert len(out.splitlines()) == 6  # title + 5 services


class TestDendrogramSummary:
    def test_contains_groups(self, rng):
        from repro.core.cluster import linkage

        z = linkage(rng.normal(size=(20, 3)), "ward")
        out = render_dendrogram_summary(
            z, 4, {0: 5, 1: 5, 2: 5, 3: 5}, {0: 0, 1: 0, 2: 1, 3: 1}
        )
        assert "group 0" in out
        assert "group 1" in out
        assert "leaves: 20" in out


class TestSankey:
    def test_lists_flows(self):
        from repro.datagen.environments import EnvironmentType

        flows = [(0, EnvironmentType.METRO, 100), (1, EnvironmentType.STADIUM, 5)]
        out = render_sankey(flows)
        assert "metro" in out
        assert "stadium" in out

    def test_top_truncation(self):
        from repro.datagen.environments import EnvironmentType

        flows = [(i, EnvironmentType.METRO, 10 - i) for i in range(10)]
        out = render_sankey(flows, top=3)
        assert len(out.splitlines()) == 4


class TestBeeswarmTable:
    def test_renders_ranked(self):
        explanation = ClusterExplanation(
            cluster=2,
            importances=[
                ServiceImportance("Spotify", 0.5, "over", 0.9),
                ServiceImportance("Waze", 0.2, "under", -0.8),
            ],
        )
        out = render_beeswarm_table(explanation)
        assert "Cluster 2" in out
        assert out.index("Spotify") < out.index("Waze")
        assert "under" in out


class TestScanAndDistribution:
    def test_scan_table(self):
        out = render_scan([2, 3], [0.5, 0.4], [1.0, 0.8])
        assert "silhouette" in out
        assert len(out.splitlines()) == 4

    def test_distribution_bars(self):
        out = render_distribution({1: 0.7, 2: 0.3})
        assert "70.0%" in out
        assert "30.0%" in out
