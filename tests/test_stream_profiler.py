"""Tests for the frozen-profile artifact and the streaming profiler."""

import numpy as np
import pytest

from repro.core.pipeline import ICNProfiler
from repro.datagen.calendar import StudyCalendar
from repro.datagen.dataset import generate_dataset
from repro.stream import (
    FrozenProfile,
    StreamingProfiler,
    freeze_profile,
    replay_dataset,
)
from tests.conftest import scaled_specs


@pytest.fixture(scope="module")
def stream_dataset():
    """Tiny deployment over a 4-day calendar — fast to replay in full."""
    calendar = StudyCalendar(
        np.datetime64("2023-01-09T00", "h"),
        np.datetime64("2023-01-12T23", "h"),
    )
    return generate_dataset(master_seed=3, specs=scaled_specs(0.05),
                            calendar=calendar)


@pytest.fixture(scope="module")
def stream_profile(stream_dataset):
    profiler = ICNProfiler(n_clusters=9, surrogate_trees=15)
    return profiler.fit(stream_dataset,
                        align_to=stream_dataset.archetypes())


@pytest.fixture(scope="module")
def frozen(stream_profile):
    return stream_profile.freeze()


@pytest.fixture(scope="module")
def batches(stream_dataset):
    return list(replay_dataset(stream_dataset))


class TestFrozenProfile:
    def test_freeze_captures_partition(self, stream_profile, frozen):
        assert frozen.n_clusters == stream_profile.n_clusters
        assert frozen.service_names == tuple(stream_profile.service_names)
        np.testing.assert_array_equal(
            frozen.antenna_ids, np.arange(stream_profile.features.shape[0])
        )
        for k, cluster in enumerate(frozen.clusters):
            members = stream_profile.features[
                stream_profile.labels == cluster
            ]
            np.testing.assert_allclose(frozen.centroids[k],
                                       members.mean(axis=0))

    def test_centroids_classify_to_own_cluster(self, frozen):
        np.testing.assert_array_equal(
            frozen.nearest_centroids(frozen.centroids), frozen.clusters
        )

    def test_vote_recovers_training_labels(self, frozen):
        labels = frozen.vote(frozen.features)
        agreement = np.mean(labels == frozen.labels)
        assert agreement > 0.9

    def test_save_load_reproduces_votes(self, frozen, tmp_path):
        path = tmp_path / "frozen.npz"
        frozen.save(path)
        loaded = FrozenProfile.load(path)
        assert loaded.service_names == frozen.service_names
        np.testing.assert_array_equal(loaded.labels, frozen.labels)
        np.testing.assert_array_equal(loaded.centroids, frozen.centroids)
        # the refit surrogate is deterministic -> identical predictions
        np.testing.assert_array_equal(
            loaded.surrogate.predict_proba(frozen.features),
            frozen.surrogate.predict_proba(frozen.features),
        )
        np.testing.assert_array_equal(
            loaded.vote(frozen.features), frozen.vote(frozen.features)
        )

    def test_freeze_rejects_bad_antenna_ids(self, stream_profile):
        with pytest.raises(ValueError, match="antenna_ids"):
            freeze_profile(stream_profile, antenna_ids=[1, 2, 3])


class TestStreamingProfiler:
    def test_full_replay_agrees_with_frozen_labels(self, frozen, batches):
        streamer = StreamingProfiler(frozen, window_hours=24,
                                     classify_every=0)
        for batch in batches:
            streamer.ingest(batch)
        ids, labels = streamer.classify_current()
        reference = frozen.labels[np.searchsorted(frozen.antenna_ids, ids)]
        assert np.mean(labels == reference) > 0.9

    def test_occupancy_counts_all_classified_antennas(self, frozen, batches):
        streamer = StreamingProfiler(frozen, window_hours=24,
                                     classify_every=12)
        results = [streamer.ingest(batch) for batch in batches]
        classified = [r for r in results if r.occupancy is not None]
        assert len(classified) == len(batches) // 12
        for result in classified:
            assert sum(result.occupancy.values()) == streamer.totals.n_antennas
        assert set(classified[-1].occupancy) == {
            int(c) for c in frozen.clusters
        }

    def test_metrics_track_ingestion(self, frozen, batches):
        streamer = StreamingProfiler(frozen, window_hours=24,
                                     classify_every=24)
        for batch in batches:
            streamer.ingest(batch)
        metrics = streamer.metrics
        assert metrics.count("batches_ingested") == len(batches)
        assert metrics.count("rows_ingested") == sum(
            b.n_rows for b in batches
        )
        assert metrics.count("antennas_discovered") == batches[0].n_rows
        assert metrics.count("classify_calls") == len(batches) // 24
        assert metrics.rows_per_second() > 0
        assert metrics.classification_latency() > 0
        assert "antenna-hours" in metrics.summary()

    def test_metrics_summary_before_any_classification(self, frozen,
                                                       batches):
        # "0.0 ms/batch" would read as a measurement; show n/a instead.
        streamer = StreamingProfiler(frozen, window_hours=24,
                                     classify_every=0)
        streamer.ingest(batches[0])
        text = streamer.metrics.summary()
        assert "(n/a)" in text
        assert "ms/batch" not in text

    def test_metrics_to_dict_is_json_ready(self, frozen, batches):
        import json

        streamer = StreamingProfiler(frozen, window_hours=24,
                                     classify_every=24)
        for batch in batches[:24]:
            streamer.ingest(batch)
        snapshot = streamer.metrics.to_dict()
        json.dumps(snapshot)  # must serialize without help
        assert snapshot["counters"]["batches_ingested"] == 24
        assert snapshot["derived"]["rows_per_second"] > 0
        assert snapshot["derived"]["classification_latency_ms"] > 0
        assert isinstance(snapshot["snapshot_ts"], float)
        assert streamer.metrics.to_dict()["snapshot_ts"] >= \
            snapshot["snapshot_ts"]

    def test_metrics_to_dict_latency_none_before_first_pass(self, frozen,
                                                            batches):
        streamer = StreamingProfiler(frozen, window_hours=24,
                                     classify_every=0)
        streamer.ingest(batches[0])
        snapshot = streamer.metrics.to_dict()
        assert snapshot["derived"]["classification_latency_ms"] is None

    def test_drift_low_on_faithful_replay(self, frozen, batches):
        streamer = StreamingProfiler(frozen, window_hours=24,
                                     classify_every=0)
        for batch in batches:
            streamer.ingest(batch)
        signal = streamer.check_drift()
        assert signal.n_common_antennas == streamer.totals.n_antennas
        assert signal.mean_centroid_drift < 0.5
        assert not signal.refit_recommended
        assert "profile holds" in signal.summary()

    def test_drift_flags_perturbed_stream(self, frozen, batches):
        faithful = StreamingProfiler(frozen, window_hours=24,
                                     classify_every=0)
        shifted = StreamingProfiler(frozen, window_hours=24,
                                    classify_every=0)
        # collapse the service mix: all traffic lands on one service, so
        # every antenna's RSCA walks far from its frozen profile
        for batch in batches:
            faithful.ingest(batch)
            collapsed = np.zeros_like(batch.traffic)
            collapsed[:, 0] = batch.traffic.sum(axis=1)
            shifted.ingest(
                type(batch)(
                    hour=batch.hour,
                    antenna_ids=batch.antenna_ids,
                    traffic=collapsed,
                    service_names=batch.service_names,
                )
            )
        low = faithful.check_drift()
        high = shifted.check_drift()
        assert high.mean_centroid_drift > low.mean_centroid_drift
        assert high.refit_recommended

    def test_scheduled_drift_checks(self, frozen, batches):
        streamer = StreamingProfiler(frozen, window_hours=24,
                                     classify_every=0,
                                     drift_check_every=48)
        signals = [
            r.drift for r in (streamer.ingest(b) for b in batches)
            if r.drift is not None
        ]
        assert len(signals) == len(batches) // 48
        assert streamer.metrics.count("drift_checks") == len(signals)

    def test_checkpoint_restore_matches_uninterrupted(self, frozen, batches,
                                                      tmp_path):
        uninterrupted = StreamingProfiler(frozen, window_hours=24,
                                          classify_every=0)
        for batch in batches:
            uninterrupted.ingest(batch)

        interrupted = StreamingProfiler(frozen, window_hours=24,
                                        classify_every=0)
        half = len(batches) // 2
        for batch in batches[:half]:
            interrupted.ingest(batch)
        path = tmp_path / "checkpoint.npz"
        interrupted.checkpoint(path)
        assert interrupted.metrics.count("checkpoints_written") == 1

        resumed = StreamingProfiler.restore(path, frozen, classify_every=0)
        assert resumed.metrics.count("batches_ingested") == half
        for batch in batches[half:]:
            resumed.ingest(batch)

        assert np.array_equal(uninterrupted.totals.totals(),
                              resumed.totals.totals())
        assert uninterrupted.totals.grand_total == resumed.totals.grand_total
        assert np.array_equal(uninterrupted.window.tensor(),
                              resumed.window.tensor())
        assert uninterrupted.occupancy() == resumed.occupancy()
        assert resumed.metrics.count("batches_ingested") == len(batches)

    def test_restore_rejects_service_mismatch(self, frozen, batches,
                                              tmp_path):
        streamer = StreamingProfiler(frozen, window_hours=24,
                                     classify_every=0)
        streamer.ingest(batches[0])
        path = tmp_path / "checkpoint.npz"
        streamer.checkpoint(path)
        other = FrozenProfile(
            features=frozen.features,
            labels=frozen.labels,
            antenna_ids=frozen.antenna_ids,
            clusters=frozen.clusters,
            centroids=frozen.centroids,
            service_names=tuple(f"renamed_{s}"
                                for s in frozen.service_names),
            surrogate=frozen.surrogate,
        )
        with pytest.raises(ValueError, match="service columns"):
            StreamingProfiler.restore(path, other)

    def test_summary_reports_state(self, frozen, batches):
        streamer = StreamingProfiler(frozen, window_hours=24,
                                     classify_every=0)
        for batch in batches[:24]:
            streamer.ingest(batch)
        text = streamer.summary()
        assert "24 hours ingested" in text
        assert "occupancy" in text

    def test_rejects_bad_parameters(self, frozen):
        with pytest.raises(ValueError, match="classify_every"):
            StreamingProfiler(frozen, classify_every=-1)
        with pytest.raises(ValueError, match="drift_threshold"):
            StreamingProfiler(frozen, drift_threshold=0.0)
