"""Property-based tests (hypothesis) for the core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.cluster import cut_tree, linkage, pairwise_distances
from repro.core.rca import rca, rsca, rsca_from_rca
from repro.core.validation import silhouette_samples
from repro.utils.assignment import align_labels, hungarian
from repro.utils.rng import derive_seed

# Strictly positive totals matrices of modest size.
totals_matrices = arrays(
    dtype=float,
    shape=st.tuples(st.integers(2, 12), st.integers(2, 10)),
    elements=st.floats(min_value=0.01, max_value=1e6,
                       allow_nan=False, allow_infinity=False),
)

feature_matrices = arrays(
    dtype=float,
    shape=st.tuples(st.integers(3, 16), st.integers(1, 5)),
    elements=st.floats(min_value=-100, max_value=100,
                       allow_nan=False, allow_infinity=False),
)


class TestRcaProperties:
    @given(totals_matrices)
    @settings(max_examples=60, deadline=None)
    def test_rca_nonnegative_and_weighted_mean_one(self, totals):
        values = rca(totals)
        assert np.all(values >= 0)
        share = totals.sum(axis=0) / totals.sum()
        np.testing.assert_allclose(values @ share, 1.0, rtol=1e-8)

    @given(totals_matrices)
    @settings(max_examples=60, deadline=None)
    def test_rsca_bounded(self, totals):
        values = rsca(totals)
        assert np.all(values >= -1.0)
        assert np.all(values <= 1.0)

    @given(totals_matrices, st.floats(min_value=0.01, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_rca_scale_invariant(self, totals, scale):
        np.testing.assert_allclose(rca(totals), rca(totals * scale),
                                   rtol=1e-7, atol=1e-10)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_rsca_from_rca_monotone_and_bounded(self, values):
        array = np.sort(np.asarray(values))
        mapped = rsca_from_rca(array)
        assert np.all(np.diff(mapped) >= -1e-12)
        assert np.all((-1.0 <= mapped) & (mapped <= 1.0))


class TestClusterProperties:
    @given(feature_matrices)
    @settings(max_examples=30, deadline=None)
    def test_linkage_heights_monotone(self, x):
        assume(np.unique(x, axis=0).shape[0] >= 2)
        z = linkage(x, "ward")
        assert np.all(np.diff(z[:, 2]) >= -1e-9)
        assert z[-1, 3] == x.shape[0]

    @given(feature_matrices)
    @settings(max_examples=30, deadline=None)
    def test_cuts_nest(self, x):
        assume(np.unique(x, axis=0).shape[0] >= 3)
        z = linkage(x, "average")
        n = x.shape[0]
        for k in range(2, min(6, n)):
            fine = cut_tree(z, k)
            coarse = cut_tree(z, k - 1)
            for label in np.unique(fine):
                assert np.unique(coarse[fine == label]).size == 1

    @given(feature_matrices)
    @settings(max_examples=30, deadline=None)
    def test_pairwise_distance_metric_axioms(self, x):
        dist = pairwise_distances(x)
        assert np.allclose(dist, dist.T, atol=1e-8)
        assert np.all(np.diag(dist) == 0)
        assert np.all(dist >= 0)

    @given(feature_matrices, st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_silhouette_bounded(self, x, k):
        assume(x.shape[0] >= k)
        labels = np.arange(x.shape[0]) % k
        samples = silhouette_samples(x, labels)
        assert np.all(samples >= -1.0 - 1e-9)
        assert np.all(samples <= 1.0 + 1e-9)


class TestAssignmentProperties:
    @given(arrays(dtype=float, shape=st.tuples(st.integers(1, 5),
                                               st.integers(1, 5)),
                  elements=st.floats(min_value=-50, max_value=50,
                                     allow_nan=False)))
    @settings(max_examples=60, deadline=None)
    def test_hungarian_not_worse_than_greedy(self, cost):
        rows, cols = hungarian(cost)
        total = cost[rows, cols].sum()
        # Greedy row-by-row assignment is an upper bound on the optimum.
        taken = set()
        greedy = 0.0
        n_assign = min(cost.shape)
        count = 0
        for i in range(cost.shape[0]):
            if count == n_assign:
                break
            options = [(cost[i, j], j) for j in range(cost.shape[1])
                       if j not in taken]
            best, j = min(options)
            greedy += best
            taken.add(j)
            count += 1
        assert total <= greedy + 1e-9

    @given(st.lists(st.integers(0, 4), min_size=2, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_align_identity(self, labels):
        mapping = align_labels(labels, labels)
        assert all(mapping[label] == label for label in set(labels))

    @given(st.lists(st.integers(0, 3), min_size=2, max_size=30),
           st.permutations([0, 1, 2, 3]))
    @settings(max_examples=60, deadline=None)
    def test_align_undoes_permutation(self, labels, perm):
        reference = np.asarray(labels)
        predicted = np.asarray([perm[l] for l in labels])
        mapping = align_labels(predicted, reference)
        recovered = np.asarray([mapping[p] for p in predicted])
        np.testing.assert_array_equal(recovered, reference)


class TestRngProperties:
    @given(st.integers(0, 2**31), st.lists(st.integers(0, 1000),
                                           min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_derive_seed_stable_and_in_range(self, master, keys):
        a = derive_seed(master, *keys)
        b = derive_seed(master, *keys)
        assert a == b
        assert 0 <= a < 2**64
