"""Retry/backoff semantics and the circuit-breaker state machine."""

import random

import pytest

from repro.obs.registry import MetricsRegistry, get_registry, set_registry
from repro.relia import (
    CircuitBreaker,
    CircuitOpen,
    RetryExhausted,
    RetryPolicy,
    retry_call,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = get_registry()
    registry = MetricsRegistry()
    set_registry(registry)
    yield registry
    set_registry(previous)


class Flaky:
    """Callable failing the first ``n_failures`` times."""

    def __init__(self, n_failures, error=OSError("transient")):
        self.n_failures = n_failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise self.error
        return "ok"


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------


def test_policy_validates_parameters():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(deadline_s=0.0)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0,
                         max_delay_s=0.5, jitter=0.0)
    rng = random.Random(0)
    delays = [policy.delay_for(k, rng) for k in (1, 2, 3, 4, 5)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_jitter_only_adds():
    policy = RetryPolicy(base_delay_s=0.1, multiplier=1.0,
                         max_delay_s=0.1, jitter=0.5)
    rng = random.Random(7)
    for k in range(1, 20):
        delay = policy.delay_for(k, rng)
        assert 0.1 <= delay <= 0.15


# ----------------------------------------------------------------------
# retry_call
# ----------------------------------------------------------------------


def test_retries_transient_failures_then_succeeds(fresh_registry):
    fn = Flaky(2)
    slept = []
    result = retry_call(
        fn,
        policy=RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter=0.0),
        site="unit", sleep=slept.append, rng=random.Random(0),
    )
    assert result == "ok"
    assert fn.calls == 3
    assert slept == [0.01, 0.02]
    retries = fresh_registry.get("repro_retries_total")
    assert retries.labels(site="unit").value == 2


def test_exhaustion_raises_typed_error_with_cause(fresh_registry):
    fn = Flaky(99)
    with pytest.raises(RetryExhausted) as excinfo:
        retry_call(
            fn,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
            site="unit", sleep=lambda _s: None,
        )
    assert fn.calls == 3
    assert excinfo.value.site == "unit"
    assert excinfo.value.attempts == 3
    assert isinstance(excinfo.value.__cause__, OSError)
    exhausted = fresh_registry.get("repro_retry_exhausted_total")
    assert exhausted.labels(site="unit").value == 1


def test_non_transient_error_propagates_immediately():
    fn = Flaky(99, error=KeyError("permanent"))
    with pytest.raises(KeyError):
        retry_call(fn, policy=RetryPolicy(max_attempts=5),
                   sleep=lambda _s: None)
    assert fn.calls == 1


def test_deadline_stops_backoff_early():
    # The first backoff (10s) alone would blow the 1s deadline, so the
    # call gives up after a single attempt without sleeping.
    fn = Flaky(99)
    slept = []
    with pytest.raises(RetryExhausted):
        retry_call(
            fn,
            policy=RetryPolicy(max_attempts=5, base_delay_s=10.0,
                               jitter=0.0, max_delay_s=10.0, deadline_s=1.0),
            sleep=slept.append,
        )
    assert fn.calls == 1
    assert slept == []


def test_on_retry_callback_sees_each_attempt():
    fn = Flaky(2)
    seen = []
    retry_call(
        fn,
        policy=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
        sleep=lambda _s: None,
        on_retry=lambda attempt, exc: seen.append((attempt, type(exc))),
    )
    assert seen == [(1, OSError), (2, OSError)]


def test_passes_arguments_through():
    assert retry_call(lambda a, b=0: a + b, 2, b=3) == 5


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------


def make_breaker(registry, clock, **kwargs):
    defaults = dict(failure_threshold=3, reset_timeout_s=10.0)
    defaults.update(kwargs)
    return CircuitBreaker("unit", registry=registry, clock=clock, **defaults)


def test_opens_after_consecutive_failures(fresh_registry):
    clock = FakeClock()
    breaker = make_breaker(fresh_registry, clock)
    assert breaker.state == "closed"
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()
    assert breaker.retry_after() == pytest.approx(10.0)


def test_success_resets_the_failure_count(fresh_registry):
    breaker = make_breaker(fresh_registry, FakeClock())
    for _ in range(2):
        breaker.record_failure()
    breaker.record_success()
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == "closed"


def test_half_open_probe_then_close(fresh_registry):
    clock = FakeClock()
    breaker = make_breaker(fresh_registry, clock)
    for _ in range(3):
        breaker.record_failure()
    clock.now = 10.0
    assert breaker.state == "half_open"
    assert breaker.allow()       # the single probe
    assert not breaker.allow()   # probe budget burned
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow()


def test_half_open_failure_reopens(fresh_registry):
    clock = FakeClock()
    breaker = make_breaker(fresh_registry, clock)
    for _ in range(3):
        breaker.record_failure()
    clock.now = 10.0
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.retry_after() == pytest.approx(10.0)


def test_check_raises_circuit_open(fresh_registry):
    clock = FakeClock()
    breaker = make_breaker(fresh_registry, clock)
    breaker.check()  # closed: fine
    for _ in range(3):
        breaker.record_failure()
    with pytest.raises(CircuitOpen) as excinfo:
        breaker.check()
    assert excinfo.value.breaker == "unit"
    assert excinfo.value.retry_after == pytest.approx(10.0)


def test_call_wrapper_records_outcomes(fresh_registry):
    breaker = make_breaker(fresh_registry, FakeClock(), failure_threshold=1)
    assert breaker.call(lambda: 42) == 42
    with pytest.raises(OSError):
        breaker.call(Flaky(99))
    assert breaker.state == "open"
    with pytest.raises(CircuitOpen):
        breaker.call(lambda: 42)


def test_breaker_exports_state_gauge_and_transitions(fresh_registry):
    clock = FakeClock()
    breaker = make_breaker(fresh_registry, clock)
    gauge = fresh_registry.get("repro_breaker_state").labels(breaker="unit")
    assert gauge.value == 0
    for _ in range(3):
        breaker.record_failure()
    assert gauge.value == 1
    clock.now = 10.0
    assert breaker.allow()
    assert gauge.value == 2
    breaker.record_success()
    assert gauge.value == 0
    transitions = fresh_registry.get("repro_breaker_transitions_total")
    assert transitions.labels(breaker="unit", to="open").value == 1
    assert transitions.labels(breaker="unit", to="half_open").value == 1
    assert transitions.labels(breaker="unit", to="closed").value == 1
