"""Tests for the ProfileService facade: correctness under concurrency,
hot-swap version consistency, caching, volumes, and admission."""

import threading
import time

import numpy as np
import pytest

from repro.serve import ProfileService, ServeClient, ShedRequest
from tests.conftest import build_frozen_profile


@pytest.fixture(scope="module")
def frozen_and_totals():
    return build_frozen_profile()


@pytest.fixture()
def service(frozen_and_totals):
    frozen, _ = frozen_and_totals
    with ProfileService(frozen, max_batch=16, max_wait_ms=2.0,
                        n_workers=2, max_queue_depth=512) as svc:
        yield svc


class TestSequentialCorrectness:
    def test_classify_matches_direct_vote(self, service, frozen_and_totals):
        frozen, _ = frozen_and_totals
        result = service.classify(frozen.features)
        assert np.array_equal(result.labels, frozen.vote(frozen.features))
        assert result.version == 1
        assert result.n_vectors == frozen.features.shape[0]

    def test_single_vector_query(self, service, frozen_and_totals):
        frozen, _ = frozen_and_totals
        result = service.classify(frozen.features[3:4])
        assert result.labels.tolist() == [int(frozen.vote(
            frozen.features[3:4])[0])]

    def test_volumes_match_transform_then_vote(self, service,
                                               frozen_and_totals):
        frozen, totals = frozen_and_totals
        result = service.classify_volumes(totals[:9])
        expected = frozen.vote(frozen.rsca_of_volumes(totals[:9]))
        assert np.array_equal(result.labels, expected)

    def test_width_mismatch_rejected(self, service):
        with pytest.raises(ValueError, match="columns"):
            service.classify(np.zeros((2, 5)))

    def test_no_profile_loaded(self):
        with ProfileService() as empty:
            with pytest.raises(RuntimeError, match="no profile loaded"):
                empty.classify(np.zeros((1, 12)))


class TestCaching:
    def test_repeat_queries_hit_cache(self, service, frozen_and_totals):
        frozen, _ = frozen_and_totals
        block = frozen.features[:10]
        first = service.classify(block)
        second = service.classify(block)
        assert first.n_cached == 0
        assert second.n_cached == 10
        assert np.array_equal(first.labels, second.labels)
        assert service.metrics.count("cache_hits") >= 10

    def test_cache_disabled(self, frozen_and_totals):
        frozen, _ = frozen_and_totals
        with ProfileService(frozen, cache_size=0) as svc:
            svc.classify(frozen.features[:5])
            result = svc.classify(frozen.features[:5])
            assert result.n_cached == 0

    def test_float_jitter_below_quantum_still_hits(self, service,
                                                   frozen_and_totals):
        frozen, _ = frozen_and_totals
        row = frozen.features[7:8]
        service.classify(row)
        result = service.classify(row + 1e-9)
        assert result.n_cached == 1

    def test_reload_invalidates_by_version_key(self, frozen_and_totals):
        frozen, _ = frozen_and_totals
        shifted, _ = build_frozen_profile(label_shift=10)
        with ProfileService(frozen) as svc:
            svc.classify(frozen.features[:5])
            svc.reload(shifted)
            result = svc.classify(frozen.features[:5])
            # Same vectors, new version: cache must not leak old labels.
            assert result.n_cached == 0
            assert result.version == 2
            assert np.array_equal(
                result.labels, shifted.vote(frozen.features[:5])
            )


class TestConcurrencyCorrectness:
    def test_threaded_mixed_queries_match_sequential_answers(
            self, frozen_and_totals):
        """Acceptance: N threads, mixed queries, zero drops, exact labels."""
        frozen, totals = frozen_and_totals
        expected_vectors = frozen.vote(frozen.features)
        expected_volumes = frozen.vote(frozen.rsca_of_volumes(totals))

        n_threads = 8
        queries_per_thread = 40
        failures = []
        completed = [0] * n_threads

        with ProfileService(frozen, max_batch=16, max_wait_ms=2.0,
                            n_workers=4, max_queue_depth=4096,
                            cache_size=256) as svc:
            client = ServeClient(svc)
            barrier = threading.Barrier(n_threads)

            def worker(thread_index):
                rng = np.random.default_rng(thread_index)
                barrier.wait()
                for _ in range(queries_per_thread):
                    row = int(rng.integers(0, frozen.features.shape[0]))
                    span = int(rng.integers(1, 5))
                    stop = min(row + span, frozen.features.shape[0])
                    try:
                        if rng.random() < 0.5:
                            result = client.classify(
                                frozen.features[row:stop], timeout=30.0
                            )
                            reference = expected_vectors[row:stop]
                        else:
                            result = client.classify_volumes(
                                totals[row:stop], timeout=30.0
                            )
                            reference = expected_volumes[row:stop]
                    except Exception as exc:  # noqa: BLE001 - recorded
                        failures.append((thread_index, repr(exc)))
                        continue
                    if not np.array_equal(result.labels, reference):
                        failures.append(
                            (thread_index,
                             f"labels {result.labels} != {reference}")
                        )
                    completed[thread_index] += 1

            threads = [
                threading.Thread(target=worker, args=(index,))
                for index in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60.0)

        assert not failures, failures[:5]
        assert completed == [queries_per_thread] * n_threads
        # The load was concurrent enough that batching actually happened.
        assert svc.metrics.count("batches_executed") > 0
        assert svc.metrics.count("shed_requests") == 0


class TestHotSwap:
    def test_reload_mid_traffic_is_version_consistent(self, frozen_and_totals):
        """Acceptance: no mixed-version answers, no in-flight errors."""
        frozen_a, _ = frozen_and_totals
        frozen_b, _ = build_frozen_profile(label_shift=10)
        expected = {
            1: frozen_a.vote(frozen_a.features),
            2: frozen_b.vote(frozen_a.features),
        }
        # The label spaces are disjoint (shift 10), so any mixed-version
        # answer is detectable row by row.
        assert set(np.unique(expected[1])).isdisjoint(np.unique(expected[2]))

        stop_flag = threading.Event()
        failures = []
        answered = [0]

        with ProfileService(frozen_a, max_batch=8, max_wait_ms=1.0,
                            n_workers=2, max_queue_depth=4096,
                            cache_size=512) as svc:
            client = ServeClient(svc)

            def traffic(seed):
                rng = np.random.default_rng(seed)
                while not stop_flag.is_set():
                    row = int(rng.integers(0, frozen_a.features.shape[0] - 4))
                    block = frozen_a.features[row:row + 4]
                    try:
                        result = client.classify(block, timeout=30.0)
                    except Exception as exc:  # noqa: BLE001 - recorded
                        failures.append(repr(exc))
                        return
                    if result.version not in expected:
                        failures.append(f"unknown version {result.version}")
                        return
                    if not np.array_equal(
                            result.labels, expected[result.version][row:row + 4]
                    ):
                        failures.append(
                            f"mixed/mismatched answer at version "
                            f"{result.version}: {result.labels}"
                        )
                        return
                    answered[0] += 1

            threads = [
                threading.Thread(target=traffic, args=(seed,))
                for seed in range(6)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.15)
            version = svc.reload(frozen_b, drain_timeout=5.0)
            assert version == 2
            time.sleep(0.15)
            stop_flag.set()
            for thread in threads:
                thread.join(30.0)

            assert not failures, failures[:5]
            assert answered[0] > 0
            # The displaced version fully drained.
            assert svc.registry.drain(1, timeout=5.0)
            # Traffic continued on the new version after the swap.
            late = client.classify(frozen_a.features[:4])
            assert late.version == 2
            assert np.array_equal(late.labels, expected[2][:4])


class TestAdmissionControl:
    def test_shed_surfaces_and_counts(self):
        # A dedicated profile whose vote blocks until released, so the
        # queue reliably fills to the watermark.
        frozen, _ = build_frozen_profile(n_antennas=60)
        release = threading.Event()
        original_vote = frozen.vote

        def slow_vote(features):
            release.wait(10.0)
            return original_vote(features)

        frozen.vote = slow_vote  # instance attribute shadows the method
        with ProfileService(frozen, max_batch=1, max_wait_ms=0.0,
                            n_workers=1, max_queue_depth=2,
                            cache_size=0) as svc:
            pending = [svc.submit(frozen.features[:1])]
            deadline = time.monotonic() + 5.0
            while (svc._batcher.queue_depth() > 0
                   and time.monotonic() < deadline):
                time.sleep(0.001)
            pending.append(svc.submit(frozen.features[1:2]))
            pending.append(svc.submit(frozen.features[2:3]))
            with pytest.raises(ShedRequest) as excinfo:
                svc.submit(frozen.features[3:4])
            assert excinfo.value.retry_after > 0
            assert svc.metrics.count("shed_requests") == 1
            release.set()
            for handle in pending:
                handle.result(timeout=10.0)


class TestMetricsSnapshot:
    def test_snapshot_contents(self, service, frozen_and_totals):
        frozen, _ = frozen_and_totals
        service.classify(frozen.features[:8])
        service.classify(frozen.features[:8])
        snapshot = service.metrics_snapshot()
        assert snapshot["profile_version"] == 1
        assert snapshot["counters"]["requests"] == 2
        assert snapshot["counters"]["vectors_classified"] == 16
        assert snapshot["cache"]["hits"] >= 8
        assert snapshot["derived"]["cache_hit_rate"] == pytest.approx(0.5)
        assert snapshot["queue_depth"] == 0

    def test_errors_counted(self, service):
        with pytest.raises(ValueError):
            service.classify(np.zeros((1, 5)))
        # Validation errors occur before submission; error counter tracks
        # failures of accepted requests, so nothing was recorded here.
        assert service.metrics.count("requests") == 0


class TestCompiledKernelRouting:
    """The tentpole serving path: batches vote through the fused kernel."""

    def test_batches_route_through_kernel(self, frozen_and_totals):
        frozen, _ = frozen_and_totals
        with ProfileService(frozen, max_batch=16, n_workers=1,
                            cache_size=0) as svc:
            queries = frozen.features[:20]
            result = svc.classify(queries)
            assert np.array_equal(result.labels, frozen.vote(queries))
            family = svc.metrics.registry.get("repro_stage_seconds")
            assert family is not None
            assert family.labels(stage="serve.kernel_vote").count >= 1

    def test_use_compiled_false_pins_object_path(self, frozen_and_totals):
        frozen, _ = frozen_and_totals
        with ProfileService(frozen, max_batch=16, n_workers=1, cache_size=0,
                            use_compiled=False) as svc:
            queries = frozen.features[:20]
            result = svc.classify(queries)
            assert np.array_equal(result.labels, frozen.vote(queries))
            family = svc.metrics.registry.get("repro_stage_seconds")
            assert family.labels(stage="serve.kernel_vote").count == 0
            assert family.labels(stage="serve.vote").count >= 1

    def test_kernel_failure_falls_back_to_object_forest(self):
        frozen, _ = build_frozen_profile(seed=11)

        class _BrokenKernel:
            def vote(self, features):
                raise RuntimeError("kernel exploded")

            def rsca_of_volumes(self, volumes):
                raise RuntimeError("kernel exploded")

        frozen._kernel = _BrokenKernel()
        with ProfileService(frozen, max_batch=16, n_workers=1,
                            cache_size=0) as svc:
            queries = frozen.features[:10]
            result = svc.classify(queries)
            # Full-fidelity answer from the object forest, NOT degraded.
            assert np.array_equal(result.labels, frozen.vote(queries))
            assert not result.degraded
            fallback = svc.metrics.registry.get("repro_kernel_fallback_total")
            assert fallback.value >= 1

    def test_volume_queries_use_fused_transform(self, frozen_and_totals):
        frozen, totals = frozen_and_totals
        with ProfileService(frozen, max_batch=16, n_workers=1,
                            cache_size=0) as svc:
            volumes = totals[:12]
            result = svc.classify_volumes(volumes)
            expected = frozen.vote(frozen.rsca_of_volumes(volumes))
            assert np.array_equal(result.labels, expected)
            family = svc.metrics.registry.get("repro_stage_seconds")
            assert family.labels(stage="serve.rsca_transform").count >= 1

    def test_broken_volume_kernel_falls_back(self):
        frozen, totals = build_frozen_profile(seed=12)

        class _BrokenKernel:
            def vote(self, features):
                raise RuntimeError("kernel exploded")

            def rsca_of_volumes(self, volumes):
                raise RuntimeError("kernel exploded")

        frozen._kernel = _BrokenKernel()
        with ProfileService(frozen, max_batch=16, n_workers=1,
                            cache_size=0) as svc:
            volumes = totals[:6]
            result = svc.classify_volumes(volumes)
            expected = frozen.vote(frozen.rsca_of_volumes(volumes))
            assert np.array_equal(result.labels, expected)
