"""Tests for the TreeSHAP path algorithm against exact enumeration."""

import numpy as np
import pytest

from repro.explain.shapley import exact_tree_shapley
from repro.explain.treeshap import TreeExplainer, tree_shap_values
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture()
def fitted_tree(rng):
    x = rng.uniform(-1, 1, size=(300, 5))
    y = (
        (x[:, 0] > 0).astype(int)
        + (x[:, 2] > 0.4).astype(int)
    )
    return DecisionTreeClassifier(max_depth=5, random_state=0).fit(x, y), x


@pytest.fixture()
def fitted_forest(rng):
    x = rng.uniform(-1, 1, size=(250, 4))
    y = np.where(x[:, 0] + x[:, 1] > 0, 1, 0)
    forest = RandomForestClassifier(n_estimators=12, max_depth=5,
                                    random_state=0).fit(x, y)
    return forest, x


class TestTreeShapValues:
    def test_matches_exact_enumeration(self, fitted_tree):
        tree_model, x = fitted_tree
        for row in range(8):
            phi, _ = tree_shap_values(tree_model.tree_, x[row])
            for class_index in range(len(tree_model.classes_)):
                exact = exact_tree_shapley(tree_model, x[row], class_index)
                np.testing.assert_allclose(
                    phi[:, class_index], exact, atol=1e-10,
                    err_msg=f"row {row} class {class_index}",
                )

    def test_local_accuracy(self, fitted_tree):
        tree_model, x = fitted_tree
        for row in range(5):
            phi, base = tree_shap_values(tree_model.tree_, x[row])
            prediction = tree_model.predict_proba(x[row:row + 1])[0]
            np.testing.assert_allclose(
                base + phi.sum(axis=0), prediction, atol=1e-10
            )

    def test_repeated_split_feature(self, rng):
        # Trees splitting the same feature twice exercise the UNWIND path.
        x = rng.uniform(0, 1, size=(400, 2))
        y = ((x[:, 0] > 0.25) & (x[:, 0] < 0.75)).astype(int)
        tree_model = DecisionTreeClassifier(max_depth=4).fit(x, y)
        # Confirm the tree really reuses feature 0.
        splits = tree_model.tree_.feature[tree_model.tree_.feature >= 0]
        assert np.sum(splits == 0) >= 2
        for row in range(6):
            phi, _ = tree_shap_values(tree_model.tree_, x[row])
            exact = exact_tree_shapley(tree_model, x[row], 1)
            np.testing.assert_allclose(phi[:, 1], exact, atol=1e-10)

    def test_single_leaf_tree(self, rng):
        x = rng.normal(size=(20, 3))
        tree_model = DecisionTreeClassifier().fit(x, np.zeros(20, dtype=int))
        phi, base = tree_shap_values(tree_model.tree_, x[0])
        np.testing.assert_allclose(phi, 0.0)
        np.testing.assert_allclose(base, [1.0])

    def test_unused_feature_gets_zero(self, fitted_tree):
        tree_model, x = fitted_tree
        used = set(tree_model.tree_.feature[tree_model.tree_.feature >= 0].tolist())
        unused = [f for f in range(5) if f not in used]
        if not unused:
            pytest.skip("tree used every feature")
        phi, _ = tree_shap_values(tree_model.tree_, x[0])
        for feature in unused:
            np.testing.assert_allclose(phi[feature], 0.0, atol=1e-12)


class TestTreeExplainer:
    def test_forest_local_accuracy(self, fitted_forest):
        forest, x = fitted_forest
        explainer = TreeExplainer(forest)
        values = explainer.shap_values(x[:20])
        proba = forest.predict_proba(x[:20])
        np.testing.assert_allclose(
            explainer.expected_value[None, :] + values.sum(axis=1),
            proba, atol=1e-8,
        )

    def test_single_tree_explainer(self, fitted_tree):
        tree_model, x = fitted_tree
        explainer = TreeExplainer(tree_model)
        values = explainer.shap_values(x[:3])
        assert values.shape == (3, 5, len(tree_model.classes_))

    def test_shap_values_for_class(self, fitted_forest):
        forest, x = fitted_forest
        explainer = TreeExplainer(forest)
        all_values = explainer.shap_values(x[:5])
        one = explainer.shap_values_for_class(x[:5], 1)
        np.testing.assert_allclose(one, all_values[:, :, 1])

    def test_unknown_class_rejected(self, fitted_forest):
        forest, x = fitted_forest
        explainer = TreeExplainer(forest)
        with pytest.raises(ValueError, match="unknown class"):
            explainer.shap_values_for_class(x[:2], 99)

    def test_informative_feature_dominates(self, fitted_forest):
        forest, x = fitted_forest
        explainer = TreeExplainer(forest)
        values = explainer.shap_values(x[:40])
        importance = np.abs(values[:, :, 1]).mean(axis=0)
        # Features 0 and 1 define the label; 2 and 3 are noise.
        assert min(importance[0], importance[1]) > max(importance[2], importance[3])

    def test_unfitted_model_rejected(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            TreeExplainer(DecisionTreeClassifier())
        with pytest.raises(RuntimeError, match="not fitted"):
            TreeExplainer(RandomForestClassifier())

    def test_wrong_model_type_rejected(self):
        with pytest.raises(TypeError, match="TreeExplainer supports"):
            TreeExplainer(object())

    def test_feature_count_checked(self, fitted_forest):
        forest, x = fitted_forest
        explainer = TreeExplainer(forest)
        with pytest.raises(ValueError, match="features"):
            explainer.shap_values(np.ones((1, 9)))
