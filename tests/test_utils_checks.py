"""Tests for the argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.checks import (
    check_in_range,
    check_matrix,
    check_positive,
    check_probability,
)


class TestCheckMatrix:
    def test_accepts_lists(self):
        out = check_matrix([[1, 2], [3, 4]], "m")
        assert out.dtype == float
        assert out.shape == (2, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_matrix([1.0, 2.0], "m")

    def test_custom_ndim(self):
        out = check_matrix([1.0, 2.0], "v", ndim=1)
        assert out.shape == (2,)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_matrix(np.empty((0, 3)), "m")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_matrix([[1.0, np.nan]], "m")

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_matrix([[1.0, np.inf]], "m")

    def test_non_negative_flag(self):
        with pytest.raises(ValueError, match="negative"):
            check_matrix([[1.0, -0.1]], "m", non_negative=True)

    def test_error_names_argument(self):
        with pytest.raises(ValueError, match="totals"):
            check_matrix([[np.nan]], "totals")


class TestScalarChecks:
    def test_positive_accepts(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, "x")

    def test_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan")])
    def test_probability_rejects(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad, "p")

    def test_in_range(self):
        assert check_in_range(5.0, "x", 0.0, 10.0) == 5.0
        with pytest.raises(ValueError):
            check_in_range(11.0, "x", 0.0, 10.0)
