"""Tests for permutation feature importance."""

import numpy as np
import pytest

from repro.explain.permutation import permutation_importance
from repro.ml.forest import RandomForestClassifier


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, size=(400, 5))
    y = np.where(x[:, 0] + 0.7 * x[:, 2] > 0, 1, 0)
    forest = RandomForestClassifier(n_estimators=25, max_depth=6,
                                    random_state=0).fit(x, y)
    return forest, x, y


class TestPermutationImportance:
    def test_informative_features_rank_first(self, fitted):
        forest, x, y = fitted
        result = permutation_importance(forest, x, y, random_state=0)
        top2 = set(result.ranking()[:2].tolist())
        assert top2 == {0, 2}

    def test_noise_features_near_zero(self, fitted):
        forest, x, y = fitted
        result = permutation_importance(forest, x, y, random_state=0)
        for j in (1, 3, 4):
            assert result.mean_drop[j] < 0.05

    def test_baseline_accuracy_recorded(self, fitted):
        forest, x, y = fitted
        result = permutation_importance(forest, x, y)
        assert result.baseline_accuracy == pytest.approx(
            forest.score(x, y)
        )

    def test_input_unmodified(self, fitted):
        forest, x, y = fitted
        snapshot = x.copy()
        permutation_importance(forest, x, y, n_repeats=2)
        np.testing.assert_array_equal(x, snapshot)

    def test_deterministic(self, fitted):
        forest, x, y = fitted
        a = permutation_importance(forest, x, y, random_state=4)
        b = permutation_importance(forest, x, y, random_state=4)
        np.testing.assert_allclose(a.mean_drop, b.mean_drop)

    def test_top_with_names(self, fitted):
        forest, x, y = fitted
        result = permutation_importance(forest, x, y, random_state=0)
        names = ["a", "b", "c", "d", "e"]
        top = result.top(2, names)
        assert set(top) == {"a", "c"}

    def test_agrees_with_shap_without_redundancy(self, small_profile):
        """On a non-redundant feature subset, SHAP and permutation agree.

        The full 73-feature surrogate has heavy category redundancy
        (five music services carry the same signal), which permutation
        importance understates by design — so the agreement check uses a
        surrogate trained on one representative service per important
        category.
        """
        from repro.explain.treeshap import TreeExplainer

        names = small_profile.service_names
        picks = [names.index(s) for s in (
            "Spotify", "Waze", "Snapchat", "Microsoft Teams",
            "Google Play Store", "Netflix", "Mappy", "WhatsApp",
        )]
        x = small_profile.features[:, picks]
        y = small_profile.labels
        forest = RandomForestClassifier(n_estimators=20, max_depth=6,
                                        random_state=0).fit(x, y)
        perm = permutation_importance(forest, x, y, n_repeats=3,
                                      random_state=0)
        explainer = TreeExplainer(forest)
        rng = np.random.default_rng(0)
        sample = rng.choice(x.shape[0], size=80, replace=False)
        shap_values = explainer.shap_values(x[sample])
        shap_importance = np.abs(shap_values).mean(axis=(0, 2))
        top_perm = set(perm.ranking()[:4].tolist())
        top_shap = set(np.argsort(shap_importance)[::-1][:4].tolist())
        assert len(top_perm & top_shap) >= 3

    def test_validation(self, fitted):
        forest, x, y = fitted
        with pytest.raises(ValueError, match="n_repeats"):
            permutation_importance(forest, x, y, n_repeats=0)
        with pytest.raises(ValueError, match="length"):
            permutation_importance(forest, x, y[:-1])
