"""Tests for the micro-batching scheduler and admission control."""

import threading
import time

import numpy as np
import pytest

from repro.serve.scheduler import MicroBatcher, ShedRequest


def _echo_classify(features):
    """Labels each row with its own first-column value (for routing checks)."""
    return features[:, 0].astype(int), 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_wait_ms": -1.0},
            {"n_workers": 0},
            {"max_queue_depth": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MicroBatcher(_echo_classify, **kwargs)

    def test_submit_before_start_raises(self):
        batcher = MicroBatcher(_echo_classify)
        with pytest.raises(RuntimeError, match="not started"):
            batcher.submit(np.zeros((1, 2)))

    def test_submit_after_stop_raises(self):
        batcher = MicroBatcher(_echo_classify)
        batcher.start()
        batcher.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            batcher.submit(np.zeros((1, 2)))


class TestBatching:
    def test_results_route_back_to_the_right_request(self):
        with MicroBatcher(_echo_classify, max_batch=8,
                          max_wait_ms=5.0, n_workers=2) as batcher:
            items = [
                batcher.submit(np.full((rows, 3), value, dtype=float))
                for value, rows in [(10, 1), (20, 3), (30, 2)]
            ]
            for value, item in zip([10, 20, 30], items):
                labels, version = MicroBatcher.wait(item, timeout=5.0)
                assert labels.tolist() == [value] * item.features.shape[0]
                assert version == 1

    def test_concurrent_submissions_aggregate_into_batches(self):
        batch_rows = []

        def classify(features):
            batch_rows.append(features.shape[0])
            time.sleep(0.002)  # give co-riders time to queue
            return features[:, 0].astype(int), 1

        n_requests = 64
        with MicroBatcher(classify, max_batch=16, max_wait_ms=20.0,
                          n_workers=1, max_queue_depth=n_requests) as batcher:
            items = []
            barrier = threading.Barrier(8)

            def submitter(start):
                barrier.wait()
                for value in range(start, start + 8):
                    items.append(
                        batcher.submit(np.full((1, 2), value, dtype=float))
                    )

            threads = [
                threading.Thread(target=submitter, args=(base * 8,))
                for base in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = sorted(
                int(MicroBatcher.wait(item, timeout=10.0)[0][0])
                for item in items
            )
        assert results == list(range(n_requests))
        assert sum(batch_rows) == n_requests
        assert max(batch_rows) > 1, "no batch ever aggregated"
        assert max(batch_rows) <= 16

    def test_oversized_request_runs_alone(self):
        sizes = []

        def classify(features):
            sizes.append(features.shape[0])
            return np.zeros(features.shape[0], dtype=int), 1

        with MicroBatcher(classify, max_batch=4, max_wait_ms=0.0,
                          n_workers=1) as batcher:
            item = batcher.submit(np.zeros((10, 2)))
            labels, _ = MicroBatcher.wait(item, timeout=5.0)
        assert labels.size == 10
        assert sizes == [10]

    def test_on_batch_callback_sees_requests_and_rows(self):
        seen = []
        with MicroBatcher(_echo_classify, max_batch=8, max_wait_ms=0.0,
                          n_workers=1,
                          on_batch=lambda reqs, rows: seen.append(
                              (reqs, rows))) as batcher:
            MicroBatcher.wait(batcher.submit(np.zeros((3, 2))), timeout=5.0)
        assert seen == [(1, 3)]


class TestAdmissionControl:
    def test_shed_when_queue_at_watermark(self):
        blocker = threading.Event()

        def classify(features):
            blocker.wait(10.0)
            return features[:, 0].astype(int), 1

        batcher = MicroBatcher(classify, max_batch=1, max_wait_ms=0.0,
                               n_workers=1, max_queue_depth=2,
                               shed_retry_after_s=0.25)
        batcher.start()
        try:
            first = batcher.submit(np.zeros((1, 2)))  # occupies the worker
            # Wait for the worker to pick the first request up.
            deadline = time.monotonic() + 5.0
            while batcher.queue_depth() > 0 and time.monotonic() < deadline:
                time.sleep(0.001)
            batcher.submit(np.zeros((1, 2)))
            batcher.submit(np.zeros((1, 2)))
            with pytest.raises(ShedRequest) as excinfo:
                batcher.submit(np.zeros((1, 2)))
            assert excinfo.value.watermark == 2
            assert excinfo.value.retry_after == pytest.approx(0.25)
        finally:
            blocker.set()
            MicroBatcher.wait(first, timeout=5.0)
            batcher.stop()


class TestFailurePaths:
    def test_classify_error_propagates_to_waiters(self):
        def classify(features):
            raise ValueError("bad features")

        with MicroBatcher(classify, n_workers=1) as batcher:
            item = batcher.submit(np.zeros((1, 2)))
            with pytest.raises(ValueError, match="bad features"):
                MicroBatcher.wait(item, timeout=5.0)

    def test_stop_fails_undelivered_requests(self):
        release = threading.Event()

        def classify(features):
            release.wait(10.0)
            return features[:, 0].astype(int), 1

        batcher = MicroBatcher(classify, max_batch=1, max_wait_ms=0.0,
                               n_workers=1, max_queue_depth=8)
        batcher.start()
        busy = batcher.submit(np.zeros((1, 2)))
        queued = batcher.submit(np.zeros((1, 2)))
        release.set()
        batcher.stop()
        # Both must resolve one way or the other — nothing hangs.
        for item in (busy, queued):
            try:
                MicroBatcher.wait(item, timeout=5.0)
            except RuntimeError as exc:
                assert "stopped" in str(exc)

    def test_wait_timeout(self):
        def classify(features):
            time.sleep(0.2)
            return features[:, 0].astype(int), 1

        with MicroBatcher(classify, n_workers=1) as batcher:
            item = batcher.submit(np.zeros((1, 2)))
            with pytest.raises(TimeoutError):
                MicroBatcher.wait(item, timeout=0.01)
            MicroBatcher.wait(item, timeout=5.0)

    def test_stop_is_idempotent(self):
        batcher = MicroBatcher(_echo_classify, n_workers=2)
        batcher.start()
        batcher.stop()
        batcher.stop()
