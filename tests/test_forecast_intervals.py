"""Tests for the empirical prediction intervals."""

import numpy as np
import pytest

from repro.forecast.intervals import IntervalForecast, IntervalWeeklyProfile
from repro.forecast.models import WEEK_HOURS

from tests.test_forecast import weekly_series


class TestIntervalForecastContainer:
    def test_coverage(self):
        forecast = IntervalForecast(
            point=np.array([2.0, 2.0, 2.0]),
            lower=np.array([1.0, 1.0, 1.0]),
            upper=np.array([3.0, 3.0, 3.0]),
        )
        assert forecast.coverage([2.0, 0.5, 2.9]) == pytest.approx(2 / 3)

    def test_headroom(self):
        forecast = IntervalForecast(
            point=np.array([2.0, 4.0]),
            lower=np.array([1.0, 2.0]),
            upper=np.array([3.0, 6.0]),
        )
        assert forecast.headroom_factor() == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="share a shape"):
            IntervalForecast(np.ones(3), np.ones(2), np.ones(3))
        with pytest.raises(ValueError, match="lower bound"):
            IntervalForecast(np.ones(2), np.full(2, 2.0), np.ones(2))
        forecast = IntervalForecast(np.ones(2), np.zeros(2), np.full(2, 2.0))
        with pytest.raises(ValueError, match="actual shape"):
            forecast.coverage(np.ones(3))


class TestIntervalWeeklyProfile:
    def test_coverage_near_target(self, rng):
        series = weekly_series(10, noise=0.15, rng=rng)
        train, test = series[:-WEEK_HOURS], series[-WEEK_HOURS:]
        model = IntervalWeeklyProfile(coverage=0.9).fit(train)
        forecast = model.forecast(WEEK_HOURS)
        observed = forecast.coverage(test)
        assert observed > 0.7  # near the nominal 0.9 on one holdout week

    def test_bounds_bracket_point(self, rng):
        series = weekly_series(8, noise=0.2, rng=rng)
        forecast = IntervalWeeklyProfile().fit(series).forecast(48)
        assert np.all(forecast.lower <= forecast.point + 1e-9)
        assert np.all(forecast.point <= forecast.upper + 1e-9)
        assert forecast.headroom_factor() > 1.0

    def test_noisier_series_wider_intervals(self, rng):
        quiet = weekly_series(8, noise=0.05, rng=np.random.default_rng(0))
        loud = weekly_series(8, noise=0.4, rng=np.random.default_rng(0))
        narrow = IntervalWeeklyProfile().fit(quiet).forecast(WEEK_HOURS)
        wide = IntervalWeeklyProfile().fit(loud).forecast(WEEK_HOURS)
        assert wide.headroom_factor() > narrow.headroom_factor()

    def test_needs_enough_history(self):
        with pytest.raises(ValueError, match="too short"):
            IntervalWeeklyProfile(calibration_weeks=2).fit(
                np.ones(3 * WEEK_HOURS)
            )

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="coverage"):
            IntervalWeeklyProfile(coverage=1.0)
        with pytest.raises(ValueError, match="calibration_weeks"):
            IntervalWeeklyProfile(calibration_weeks=0)

    def test_unfitted(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            IntervalWeeklyProfile().forecast(5)

    def test_on_generated_cluster_series(self, small_dataset, small_profile):
        from repro.forecast.evaluate import cluster_hourly_series

        series = cluster_hourly_series(
            small_dataset, small_profile.labels, 1, max_antennas=10
        )
        train, test = series[:-WEEK_HOURS], series[-WEEK_HOURS:]
        forecast = IntervalWeeklyProfile(coverage=0.9).fit(train).forecast(
            WEEK_HOURS
        )
        assert forecast.coverage(test) > 0.6
        assert 1.0 < forecast.headroom_factor() < 5.0
