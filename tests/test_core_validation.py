"""Tests for the cluster validity indices (silhouette, Dunn, DB)."""

import numpy as np
import pytest

from repro.core.cluster import AgglomerativeClustering, linkage, Dendrogram
from repro.core.validation import (
    davies_bouldin_index,
    dunn_index,
    scan_k,
    silhouette_samples,
    silhouette_score,
)

scipy_hierarchy = pytest.importorskip("scipy.cluster.hierarchy")


@pytest.fixture()
def blobs(rng):
    centers = np.array([[0.0, 0.0], [8.0, 0.0], [0.0, 8.0]])
    x = np.vstack([
        center + rng.normal(scale=0.4, size=(20, 2)) for center in centers
    ])
    labels = np.repeat([0, 1, 2], 20)
    return x, labels


class TestSilhouette:
    def test_well_separated_near_one(self, blobs):
        x, labels = blobs
        assert silhouette_score(x, labels) > 0.85

    def test_random_labels_near_zero(self, blobs, rng):
        x, _ = blobs
        random_labels = rng.integers(0, 3, size=x.shape[0])
        assert abs(silhouette_score(x, random_labels)) < 0.25

    def test_bounds(self, blobs, rng):
        x, labels = blobs
        samples = silhouette_samples(x, labels)
        assert np.all(samples >= -1.0) and np.all(samples <= 1.0)

    def test_two_point_exact(self):
        # Two singleton clusters: silhouette 0 by convention.
        x = np.array([[0.0], [1.0]])
        assert silhouette_score(x, [0, 1]) == pytest.approx(0.0)

    def test_hand_computed(self):
        # Clusters {0,1} and {2}; sample 0: a = 1, b = 4 -> (4-1)/4 = 0.75.
        x = np.array([[0.0], [1.0], [4.0]])
        samples = silhouette_samples(x, [0, 0, 1])
        assert samples[0] == pytest.approx(0.75)
        # sample 1: a = 1, b = 3 -> 2/3; sample 2: singleton -> 0.
        assert samples[1] == pytest.approx(2.0 / 3.0)
        assert samples[2] == pytest.approx(0.0)

    def test_precomputed_distances_equivalent(self, blobs):
        from repro.core.cluster import pairwise_distances

        x, labels = blobs
        direct = silhouette_score(x, labels)
        reused = silhouette_score(x, labels, pairwise_distances(x))
        assert direct == pytest.approx(reused)

    def test_single_cluster_rejected(self, blobs):
        x, _ = blobs
        with pytest.raises(ValueError, match="two clusters"):
            silhouette_score(x, np.zeros(x.shape[0], dtype=int))

    def test_label_length_mismatch_rejected(self, blobs):
        x, labels = blobs
        with pytest.raises(ValueError, match="labels"):
            silhouette_score(x, labels[:-1])


class TestDunn:
    def test_separated_blobs_high(self, blobs):
        x, labels = blobs
        assert dunn_index(x, labels) > 1.0

    def test_mixed_labels_low(self, blobs, rng):
        x, labels = blobs
        shuffled = labels.copy()
        rng.shuffle(shuffled)
        assert dunn_index(x, shuffled) < dunn_index(x, labels)

    def test_hand_computed(self):
        # Clusters {0, 1} and {10}: separation 9, diameter 1 -> Dunn 9.
        x = np.array([[0.0], [1.0], [10.0]])
        assert dunn_index(x, [0, 0, 1]) == pytest.approx(9.0)

    def test_all_singletons_infinite(self):
        x = np.array([[0.0], [5.0], [9.0]])
        assert dunn_index(x, [0, 1, 2]) == np.inf


class TestDaviesBouldin:
    def test_separated_blobs_low(self, blobs):
        x, labels = blobs
        assert davies_bouldin_index(x, labels) < 0.3

    def test_worse_partition_higher(self, blobs, rng):
        x, labels = blobs
        shuffled = labels.copy()
        rng.shuffle(shuffled)
        assert davies_bouldin_index(x, shuffled) > davies_bouldin_index(x, labels)


class TestScanK:
    def test_detects_true_k(self, rng):
        centers = 10.0 * np.eye(5, 4)  # five well-separated fixed centers
        x = np.vstack([
            center + rng.normal(scale=0.3, size=(15, 4)) for center in centers
        ])
        dendrogram = Dendrogram(linkage(x, "ward"))
        result = scan_k(x, dendrogram, ks=range(2, 10))
        assert result.best_k("silhouette") == 5

    def test_as_dict(self, rng):
        x = rng.normal(size=(30, 3))
        dendrogram = Dendrogram(linkage(x, "ward"))
        result = scan_k(x, dendrogram, ks=range(2, 5),
                        include_davies_bouldin=True)
        table = result.as_dict()
        assert set(table) == {2, 3, 4}
        assert set(table[2]) == {"silhouette", "dunn", "davies_bouldin"}

    def test_drop_after(self, rng):
        x = rng.normal(size=(30, 3))
        dendrogram = Dendrogram(linkage(x, "ward"))
        result = scan_k(x, dendrogram, ks=range(2, 6))
        drops = result.drop_after("silhouette")
        for k, drop in drops.items():
            idx = result.ks.index(k)
            assert drop == pytest.approx(
                result.silhouette[idx] - result.silhouette[idx + 1]
            )

    def test_unknown_metric_rejected(self, rng):
        x = rng.normal(size=(20, 2))
        dendrogram = Dendrogram(linkage(x, "ward"))
        result = scan_k(x, dendrogram, ks=range(2, 4))
        with pytest.raises(ValueError, match="metric"):
            result.drop_after("cohesion")


class TestGapStatistic:
    def test_gap_peaks_at_true_k(self, rng):
        from repro.core.validation import gap_statistic
        from repro.core.cluster import Dendrogram, linkage

        centers = 10.0 * np.eye(4, 3)
        x = np.vstack([
            center + rng.normal(scale=0.3, size=(20, 3)) for center in centers
        ])
        dendrogram = Dendrogram(linkage(x, "ward"))
        gaps = gap_statistic(x, dendrogram, ks=range(2, 9), n_references=3)
        # The gap rises until the true k and flattens/drops after:
        # pick the first k whose gap is within a small tolerance of max.
        best = max(gaps, key=gaps.get)
        assert best in (4, 5)
        assert gaps[4] > gaps[2]

    def test_reference_count_validated(self, rng):
        from repro.core.validation import gap_statistic
        from repro.core.cluster import Dendrogram, linkage

        x = rng.normal(size=(20, 3))
        dendrogram = Dendrogram(linkage(x, "ward"))
        with pytest.raises(ValueError, match="n_references"):
            gap_statistic(x, dendrogram, ks=[2], n_references=0)
