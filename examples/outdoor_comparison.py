#!/usr/bin/env python
"""Indoor vs outdoor demand comparison (the paper's Section 5.3 / Fig. 9).

Scenario: an operator wants to know whether the specialized indoor demand
profiles it discovered also show up on the surrounding macro layer — if
they did, outdoor-style capacity planning would suffice indoors too.

The script classifies outdoor antennas within 1 km of the ICN sites
through the indoor surrogate, using the Eq. 5 RCA that measures outdoor
mixes against the *indoor* reference, and prints the cluster distribution
(the paper finds ~70% of outdoor antennas in the general-use cluster).

Run:  python examples/outdoor_comparison.py
"""

import numpy as np

from repro import ICNProfiler, generate_dataset
from repro.datagen import neighbours_within
from repro.viz import render_distribution

from quickstart import reduced_specs


def main():
    dataset = generate_dataset(master_seed=0, specs=reduced_specs())
    profile = ICNProfiler(n_clusters=9).fit(
        dataset, align_to=dataset.archetypes()
    )

    print("Generating the outdoor macro population near the ICN sites ...")
    outdoor_antennas, outdoor_totals = dataset.outdoor(count=3000)
    some_site = dataset.sites[0]
    nearby = neighbours_within(outdoor_antennas, some_site, radius_km=1.0)
    print(
        f"  {len(outdoor_antennas)} outdoor antennas generated; "
        f"{len(nearby)} within 1 km of site {some_site.name!r}"
    )

    print("\nClassifying outdoor antennas through the indoor surrogate ...")
    comparison = profile.classify_outdoor(outdoor_totals, dataset.totals)
    print(render_distribution(comparison.distribution))

    general = comparison.fraction_of(1)
    specialized = comparison.fraction_in([0, 4, 7, 3, 6, 8])
    print(
        f"\ngeneral-use cluster share: {general:.0%} "
        f"(paper: ~70%)"
    )
    print(
        f"commuter/office/stadium clusters combined: {specialized:.0%} "
        f"(paper: negligible)"
    )
    print(
        "\nConclusion: the indoor service-demand diversity is absent on the"
        "\nmacro layer — ICN planning needs environment-aware dimensioning."
    )


if __name__ == "__main__":
    main()
