#!/usr/bin/env python
"""Profiling a custom deployment: an enterprise-heavy operator.

Scenario: a private-network operator runs mostly corporate campuses and
hospitals (not the paper's transit-heavy mix) and wants to know how many
distinct service-demand profiles its deployment exhibits, to size network
slices (paper Section 7).  This example shows the library's API on a
user-defined deployment:

* custom environment specs (counts, Paris share, volumes),
* the Fig. 2 k-selection scan to choose the cluster count,
* cluster -> environment attribution on the chosen k.

Run:  python examples/custom_deployment.py
"""

from repro import ICNProfiler, generate_dataset
from repro.datagen.environments import EnvironmentSpec, EnvironmentType
from repro.viz import render_scan

ENTERPRISE_SPECS = (
    EnvironmentSpec(EnvironmentType.WORKSPACE, 260, 0.55, (2, 8), 3.0e5),
    EnvironmentSpec(EnvironmentType.HOSPITAL, 60, 0.30, (2, 6), 2.5e5),
    EnvironmentSpec(EnvironmentType.COMMERCIAL, 50, 0.20, (1, 4), 5.0e5),
    EnvironmentSpec(EnvironmentType.HOTEL, 30, 0.40, (1, 3), 2.0e5),
    EnvironmentSpec(EnvironmentType.EXPO, 40, 0.50, (2, 8), 4.0e5),
    EnvironmentSpec(EnvironmentType.TUNNEL, 20, 0.40, (1, 3), 3.5e5),
)


def main():
    print("Generating the enterprise-heavy deployment ...")
    dataset = generate_dataset(master_seed=3, specs=ENTERPRISE_SPECS)
    print(f"  {dataset.n_antennas} antennas at {len(dataset.sites)} sites")

    profiler = ICNProfiler(surrogate_trees=50)
    print("\nScanning candidate cluster counts (Fig. 2 methodology) ...")
    scan = profiler.scan_cluster_counts(dataset, ks=range(2, 11))
    print(render_scan(scan.ks, scan.silhouette, scan.dunn))
    best_k = scan.best_k("silhouette")
    print(f"\nselected k = {best_k} (high silhouette followed by a drop)")

    profile = ICNProfiler(n_clusters=best_k, surrogate_trees=50).fit(dataset)
    print()
    print(profile.summary())

    print("\nSlice proposal (cluster -> dominant environment):")
    table = profile.environment_table()
    for cluster, size in sorted(profile.cluster_sizes().items()):
        dominant = table.dominant_environment(cluster)
        share = table.composition_of(cluster)[dominant]
        print(
            f"  slice {cluster}: {size:>4} antennas, "
            f"anchor environment {dominant.value} ({share:.0%})"
        )


if __name__ == "__main__":
    main()
