#!/usr/bin/env python
"""Full paper reproduction at the original scale (4,762 antennas).

Regenerates every headline number of the paper in one run and prints a
figure-by-figure report.  This is the heavyweight example (~3-5 minutes);
the other examples run on reduced deployments.

Run:  python examples/full_reproduction_report.py
"""

import time

import numpy as np

from repro import ICNProfiler, generate_dataset
from repro.analysis.temporal import cluster_temporal_heatmap
from repro.core.rca import feature_histograms
from repro.datagen.environments import EnvironmentType
from repro.viz import (
    render_dendrogram_summary,
    render_distribution,
    render_sankey,
    render_scan,
)


def banner(text):
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def main():
    start = time.time()
    banner("Dataset (paper Section 3)")
    dataset = generate_dataset(master_seed=0)
    print(f"{dataset.n_antennas} indoor antennas x {dataset.n_services} services "
          f"over {dataset.calendar.n_hours} hours")

    banner("Fig. 1 — why RSCA (feature distributions)")
    hists = feature_histograms(dataset.totals)
    norm_counts, _ = hists["normalized"]
    print(f"normalized traffic: {norm_counts[0] / norm_counts.sum():.0%} of "
          f"mass in the first bin (spike at 0)")
    print(f"max RCA observed: {hists['max_rca']:.1f} (unbounded tail)")
    rsca_counts, rsca_edges = hists["rsca"]
    neg = rsca_counts[rsca_edges[:-1] < 0].sum() / rsca_counts.sum()
    print(f"RSCA mass below 0: {neg:.0%} (balanced index)")

    banner("Fig. 2 — selecting k")
    profiler = ICNProfiler(n_clusters=9)
    scan = profiler.scan_cluster_counts(dataset, ks=range(2, 16))
    print(render_scan(scan.ks, scan.silhouette, scan.dunn))
    print(f"silhouette peaks: {scan.local_peaks('silhouette')}")
    print(f"dunn peaks:       {scan.local_peaks('dunn')}")

    banner("Figs. 3/4 — clustering (Ward, k = 9)")
    profile = profiler.fit(dataset, align_to=dataset.archetypes())
    print(render_dendrogram_summary(
        profile.clustering.linkage_matrix_, 9,
        profile.cluster_sizes(), profile.groups(3),
    ))
    print(f"surrogate accuracy: {profile.surrogate_accuracy:.3f}")

    banner("Fig. 5 — SHAP per cluster (top services)")
    explanations = profile.explain(samples_per_cluster=25)
    for cluster in sorted(explanations):
        top = explanations[cluster].top(5)
        listing = ", ".join(f"{si.service} ({si.direction})" for si in top)
        print(f"cluster {cluster}: {listing}")

    banner("Table 1 / Figs. 6-8 — environments")
    table = profile.environment_table()
    print(render_sankey(table.sankey_flows(), top=12))
    shares = profile.paris_shares()
    print("\nParis shares per cluster: "
          + ", ".join(f"{c}:{s:.0%}" for c, s in sorted(shares.items())))

    banner("Fig. 9 — outdoor comparison (20,000 macro antennas)")
    _, outdoor_totals = dataset.outdoor(count=20000)
    comparison = profile.classify_outdoor(outdoor_totals, dataset.totals)
    print(render_distribution(comparison.distribution))

    banner("Figs. 10/11 — temporal patterns")
    for cluster, note in ((0, "commuters"), (8, "stadiums"), (3, "offices")):
        heatmap = cluster_temporal_heatmap(dataset, profile.labels, cluster,
                                           max_antennas=100)
        parts = [
            f"cluster {cluster} ({note}):",
            f"peak hours {sorted(heatmap.peak_hours(2))}",
            f"weekend ratio {heatmap.weekend_weekday_ratio():.2f}",
            f"burstiness {heatmap.burstiness():.1f}",
        ]
        if cluster == 0:
            parts.append(f"strike-day ratio {heatmap.strike_suppression():.2f}")
        print("  ".join(parts))

    print(f"\nTotal runtime: {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
