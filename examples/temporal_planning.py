#!/usr/bin/env python
"""Environment-aware temporal planning (the paper's Section 6 + roadmap).

Scenario: an MNO wants per-environment activity calendars to drive the
resource-orchestration ideas in the paper's Section 7 — slice capacity by
indoor environment, schedule energy saving in dead hours, and pre-stage
content caches before peaks.

The script renders Fig. 10-style heatmaps for one cluster per dendrogram
group and extracts the operational signals: commute peaks, office
diurnality, event burstiness, the 19 Jan strike impact, and the lag
between event social traffic and post-event vehicular navigation.

Run:  python examples/temporal_planning.py
"""

import numpy as np

from repro import ICNProfiler, generate_dataset
from repro.analysis.temporal import (
    cluster_temporal_heatmap,
    service_temporal_heatmap,
)
from repro.viz import render_heatmap

from quickstart import reduced_specs


def describe(name, heatmap):
    peaks = sorted(heatmap.peak_hours(2))
    print(f"\n--- {name} ---")
    print(f"busiest hours (weekdays): {peaks[0]:02d}:00 and {peaks[1]:02d}:00")
    print(f"weekend/weekday load ratio: {heatmap.weekend_weekday_ratio():.2f}")
    print(f"burstiness (peak/mean):      {heatmap.burstiness():.1f}")
    try:
        print(f"strike-day load vs normal:   {heatmap.strike_suppression():.2f}")
    except ValueError:
        pass


def main():
    dataset = generate_dataset(master_seed=0, specs=reduced_specs())
    profile = ICNProfiler(n_clusters=9).fit(
        dataset, align_to=dataset.archetypes()
    )
    labels = profile.labels

    # One representative cluster per dendrogram group.
    representatives = {
        "cluster 0 — Paris metro/train (orange)": 0,
        "cluster 8 — Paris stadiums (green)": 8,
        "cluster 3 — corporate offices (red)": 3,
    }
    for name, cluster in representatives.items():
        heatmap = cluster_temporal_heatmap(dataset, labels, cluster,
                                           max_antennas=60)
        describe(name, heatmap)
        print(render_heatmap(
            heatmap.values,
            [str(d) for d in heatmap.dates],
        ))

    print("\n=== Service-level signals (Fig. 11 style) ===")
    snapchat = service_temporal_heatmap(dataset, labels, 8, "Snapchat",
                                        max_antennas=40)
    waze = service_temporal_heatmap(dataset, labels, 8, "Waze",
                                    max_antennas=40)
    social_peak = snapchat.peak_hours(1)[0]
    nav_peak = waze.peak_hours(1)[0]
    print(f"stadium Snapchat peak hour: {social_peak:02d}:00")
    print(f"stadium Waze peak hour:     {nav_peak:02d}:00 "
          f"(attendees driving home ~{nav_peak - social_peak}h later)")

    teams = service_temporal_heatmap(dataset, labels, 3, "Microsoft Teams",
                                     max_antennas=40)
    netflix = service_temporal_heatmap(dataset, labels, 3, "Netflix",
                                       max_antennas=40)
    print(f"office Teams business-hours share: "
          f"{teams.business_hours_share():.0%}")
    print(f"office Netflix peak hour: {netflix.peak_hours(1)[0]:02d}:00 "
          f"(lunch break)")

    print(
        "\nPlanning take-aways:"
        "\n  * transit slices need capacity 07-10 and 17-20 only;"
        "\n    weekend + strike days are energy-saving windows"
        "\n  * venue slices are event-driven: pre-stage capacity on the"
        "\n    shared fixture calendar, add post-event navigation headroom"
        "\n  * office slices idle outside 09-18 weekdays; cache video for"
        "\n    the lunch-break surge"
    )


if __name__ == "__main__":
    main()
