#!/usr/bin/env python
"""A tour of ``repro.relia``: faults in, graceful behavior out.

Scenario: the streaming ingester and the serving node run unattended
against a live feed, and the feed misbehaves — transient I/O errors, a
poisoned hour, duplicated and late deliveries, a torn checkpoint, a
crashing worker thread.  This example arms a seeded fault plan at the
sites compiled into the production paths, runs the real stream + serve
stack through the storm, and shows the resilience layer absorbing every
fault: retries, quarantine, reordering, CRC-detected corruption with
rollback, worker supervision, and breaker-gated degraded answers.

Run:  python examples/resilience_tour.py
"""

import random
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import ICNProfiler, generate_dataset
from repro.datagen.calendar import StudyCalendar
from repro.obs import get_registry
from repro.relia import (
    FaultPlan,
    ResilientStreamingProfiler,
    RetryPolicy,
    StreamDegradePolicy,
    inject,
    perturb_hourly_stream,
)
from repro.serve import ProfileService, ServeDegradePolicy
from repro.stream import StreamingProfiler, checkpoint_path, replay_dataset

from quickstart import reduced_specs


def main():
    print("=== Freeze a reference profile ===")
    calendar = StudyCalendar(
        np.datetime64("2023-01-09T00", "h"), np.datetime64("2023-01-10T23", "h")
    )
    dataset = generate_dataset(
        master_seed=11, specs=reduced_specs(), calendar=calendar
    )
    profile = ICNProfiler(n_clusters=6, surrogate_trees=15).fit(dataset)
    frozen = profile.freeze(service_totals=dataset.totals.sum(axis=0))
    hours = [str(h) for h in calendar.hours]
    print(f"{dataset.n_antennas} antennas, {len(hours)} feed hours")

    print("\n=== Arm a seeded fault plan ===")
    plan = (
        FaultPlan(seed=0)
        # Two transient I/O errors at hour 5: retry absorbs them.
        .add("stream.ingest", "io_error", times=2, hour=hours[5])
        # Hour 9 fails on *every* attempt: quarantined, stream moves on.
        .add("stream.ingest", "io_error", times=None, hour=hours[9])
        # Feed mess: hour 14 re-delivered, hour 20 arrives late.
        .add("stream.feed", "duplicate", hour=hours[14])
        .add("stream.feed", "delay", hour=hours[20])
        # The second checkpoint save is torn on disk.
        .add("stream.checkpoint", "truncate", times=1, skip=1, fraction=0.4)
        # Two serving workers die mid-batch.
        .add("serve.worker", "crash", times=2)
    )
    for rule in ("io_error x2 @ h5", "io_error forever @ h9",
                 "duplicate @ h14", "delay @ h20",
                 "truncate checkpoint #2", "crash 2 serve workers"):
        print(f"  armed: {rule}")

    work_dir = Path(tempfile.mkdtemp(prefix="resilience_tour_"))
    ckpt = work_dir / "stream_state"

    with inject(plan):
        print("\n=== Ingest the storm ===")
        inner = StreamingProfiler(frozen, classify_every=0)
        resilient = ResilientStreamingProfiler(
            inner,
            StreamDegradePolicy(
                reorder_window=3,
                retry=RetryPolicy(max_attempts=3, base_delay_s=0.0,
                                  jitter=0.0),
            ),
            rng=random.Random(0),
        )
        with resilient:
            for i, batch in enumerate(
                perturb_hourly_stream(replay_dataset(dataset))
            ):
                resilient.ingest(batch)
                if i == len(hours) // 2:
                    resilient.checkpoint(ckpt)   # clean save -> .bak
        resilient.checkpoint(ckpt)               # this one is truncated
        held = resilient.quarantined_hours()
        print(f"quarantined hours: {[str(h) for h in held]}")
        print(f"hours folded: {inner.metrics.count('batches_ingested')} "
              f"of {len(hours)} (1 poisoned, folded in calendar order)")

        print("\n=== Restore from the torn checkpoint ===")
        restored = StreamingProfiler.restore(ckpt, frozen, classify_every=0)
        print(f"restored up to {restored.totals.last_hour} "
              f"(rolled back to the .bak; torn file kept as "
              f"{checkpoint_path(ckpt).name}.corrupt)")

        print("\n=== Serve through worker crashes ===")
        with ProfileService(
            frozen, n_workers=2, cache_size=0, max_wait_ms=1.0,
            degrade=ServeDegradePolicy(failure_threshold=1,
                                       reset_timeout_s=1.0),
            max_item_retries=1,
        ) as service:
            first = service.classify(frozen.features[:4], timeout=30.0)
            second = service.classify(frozen.features[4:8], timeout=30.0)
            print(f"during the crashes: degraded={first.degraded}, "
                  f"then breaker-open fast path: degraded={second.degraded}")
            time.sleep(1.2)  # let the breaker half-open
            third = service.classify(frozen.features[8:12], timeout=30.0)
            print(f"after recovery probe: degraded={third.degraded} "
                  f"(full forest votes again)")
            print(f"worker crashes supervised: "
                  f"{service._batcher.crash_count()}, pool back to "
                  f"{service._batcher.alive_workers()} workers")

    print("\n=== What the telemetry recorded ===")
    exposition = get_registry().prometheus_text()
    for line in exposition.splitlines():
        if line.startswith((
            "repro_faults_injected_total", "repro_retries_total",
            "repro_quarantined_batches_total", "repro_reordered_batches_total",
            "repro_duplicate_hours_total", "repro_worker_crashes_total",
        )):
            print(f"  {line}")
    print("\nEvery fault was injected into the *production* code paths —")
    print("with no plan installed the same sites are single no-op checks.")


if __name__ == "__main__":
    main()
