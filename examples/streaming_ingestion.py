#!/usr/bin/env python
"""Online ingestion with ``repro.stream``: replay, classify, drift, resume.

Scenario: the two-month measurement campaign is over and the Section 4
profile is fitted; now the operator keeps the feed running and wants
live answers without refitting nightly.  This example fits and freezes
a reference profile, replays a fresh week of the deployment as hourly
batches through a :class:`~repro.stream.StreamingProfiler`, reads the
per-day cluster occupancy and the drift verdict, then simulates an
ingest-process crash — checkpoint to ``.npz``, restore, finish the
stream — and shows the resumed run ends in exactly the state of an
uninterrupted one.

Run:  python examples/streaming_ingestion.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ICNProfiler, generate_dataset
from repro.datagen.calendar import StudyCalendar
from repro.stream import FrozenProfile, StreamingProfiler, replay_dataset

from quickstart import reduced_specs


def main():
    workdir = Path(tempfile.mkdtemp(prefix="repro-stream-"))

    print("=== Fit and freeze the reference profile ===")
    dataset = generate_dataset(master_seed=0, specs=reduced_specs())
    profile = ICNProfiler(n_clusters=9).fit(
        dataset, align_to=dataset.archetypes()
    )
    frozen = profile.freeze()
    artifact = workdir / "frozen_profile.npz"
    frozen.save(artifact)
    frozen = FrozenProfile.load(artifact)  # the deterministic round trip
    print(f"frozen {frozen.n_clusters} clusters over "
          f"{frozen.antenna_ids.size} antennas -> {artifact.name}")

    print("\n=== Replay one fresh week as hourly batches ===")
    week = generate_dataset(
        master_seed=7, specs=reduced_specs(),
        calendar=StudyCalendar(np.datetime64("2023-03-06T00", "h"),
                               np.datetime64("2023-03-12T23", "h")),
    )
    batches = list(replay_dataset(week))
    streamer = StreamingProfiler(frozen, window_hours=72, classify_every=24)
    for batch in batches:
        result = streamer.ingest(batch)
        if result.occupancy is not None:
            top = sorted(result.occupancy.items(),
                         key=lambda kv: -kv[1])[:3]
            occupancy = ", ".join(f"cluster {c}: {n}" for c, n in top)
            print(f"  {batch.hour}  top occupancy  {occupancy}")

    print("\n=== Drift verdict against the frozen reference ===")
    print(f"  {streamer.check_drift().summary()}")

    print("\n=== Crash mid-stream, restore, finish ===")
    half = len(batches) // 2
    interrupted = StreamingProfiler(frozen, window_hours=72,
                                    classify_every=24)
    for batch in batches[:half]:
        interrupted.ingest(batch)
    checkpoint = workdir / "stream_checkpoint.npz"
    interrupted.checkpoint(checkpoint)
    print(f"  'crash' after {half} batches; state saved to "
          f"{checkpoint.name}")

    resumed = StreamingProfiler.restore(checkpoint, frozen,
                                        classify_every=24)
    for batch in batches[half:]:
        resumed.ingest(batch)
    identical = (
        np.array_equal(streamer.totals.totals(), resumed.totals.totals())
        and np.array_equal(streamer.window.tensor(),
                           resumed.window.tensor())
        and streamer.occupancy() == resumed.occupancy()
    )
    print(f"  resumed run matches the uninterrupted one bit for bit: "
          f"{identical}")

    print("\n=== Stream health counters ===")
    print(streamer.metrics.summary())


if __name__ == "__main__":
    main()
