#!/usr/bin/env python
"""Ingesting operator-format measurement data.

Scenario: a researcher holds real (aggregated, GDPR-compliant) traffic
exports — session records rolled up to hourly CSVs, or a wide totals
matrix — and wants to run the paper's analysis on them.  This example
round-trips both supported formats through ``repro.io`` and runs the
pipeline on the ingested matrix, demonstrating that the analysis is
data-source agnostic.  It also peeks one layer deeper: the synthetic
session generator shows the raw measurements the operator's probes would
have recorded before aggregation.

Run:  python examples/data_ingestion.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ICNProfiler, generate_dataset
from repro.datagen.sessions import SessionGenerator, session_statistics
from repro.io import (
    export_hourly_csv,
    export_totals_csv,
    load_hourly_csv,
    load_totals_csv,
    totals_from_hourly,
)

from quickstart import reduced_specs


def main():
    dataset = generate_dataset(master_seed=1, specs=reduced_specs())
    workdir = Path(tempfile.mkdtemp(prefix="repro-io-"))

    print("=== Wide totals CSV (the clustering input) ===")
    totals_path = workdir / "totals.csv"
    export_totals_csv(
        totals_path, dataset.totals, dataset.antenna_names(),
        dataset.service_names,
    )
    names, services, totals = load_totals_csv(totals_path)
    print(f"wrote and re-read {totals_path.name}: "
          f"{len(names)} antennas x {len(services)} services")

    profile = ICNProfiler(n_clusters=9).fit(totals)
    print(f"pipeline on the ingested matrix: {profile.n_clusters} clusters, "
          f"surrogate accuracy {profile.surrogate_accuracy:.3f}")

    print("\n=== Long hourly CSV (a measurement-platform export) ===")
    window = dataset.calendar.window(
        np.datetime64("2023-01-09T00", "h"),
        np.datetime64("2023-01-15T23", "h"),
    )
    antenna_ids = [0, 1, 2, 3]
    hourly = dataset.hourly_service("Netflix", antenna_ids=antenna_ids,
                                    window=window)
    hourly_path = workdir / "netflix_hourly.csv"
    export_hourly_csv(hourly_path, hourly, dataset.calendar.hours[window],
                      antenna_ids, "Netflix")
    ids, svc_names, hours, tensor = load_hourly_csv(hourly_path)
    per_antenna_totals = totals_from_hourly(tensor)
    print(f"wrote and re-read {hourly_path.name}: "
          f"{tensor.shape[0]} antennas x {tensor.shape[2]} hours")
    print(f"weekly Netflix totals per antenna (MB): "
          f"{np.round(per_antenna_totals[:, 0], 1)}")

    print("\n=== The raw session layer underneath ===")
    generator = SessionGenerator(dataset)
    sessions = generator.sessions_for(0, "Netflix", window)
    stats = session_statistics(sessions)
    print(f"antenna 0 Netflix sessions that week: {stats['count']}")
    print(f"  median flow {stats['volume_mb_p50']:.1f} MB, "
          f"p95 {stats['volume_mb_p95']:.1f} MB")
    print(f"  mean duration {stats['duration_s_mean']:.0f} s, "
          f"downlink share {stats['downlink_share']:.0%}")
    aggregated = generator.aggregate_hourly(sessions, window)
    drift = np.abs(aggregated - hourly[0]).max()
    print(f"  re-aggregating the sessions reproduces the hourly series "
          f"(max deviation {drift:.2e} MB)")


if __name__ == "__main__":
    main()
