#!/usr/bin/env python
"""Concurrent query serving with ``repro.serve``: classify, hot-swap, HTTP.

Scenario: the Section 4 profile is fitted and frozen; now downstream
systems — slice planners, anomaly monitors, dashboards — want cluster
answers on demand without touching the training pipeline.  This example
freezes a profile with its reference service mix, stands up a
:class:`~repro.serve.ProfileService` (micro-batching + result cache +
admission control), answers RSCA-vector and raw-volume queries through
the in-process client, hot-swaps a refreshed profile under live
traffic, then serves the same answers over the stdlib JSON HTTP
endpoint and reads the operational metrics.

Run:  python examples/serving_queries.py
"""

import threading

import numpy as np

from repro import ICNProfiler, generate_dataset
from repro.serve import HttpServeClient, ProfileService, ServeClient, \
    make_server

from quickstart import reduced_specs


def main():
    print("=== Fit and freeze the reference profile ===")
    dataset = generate_dataset(master_seed=0, specs=reduced_specs())
    profile = ICNProfiler(n_clusters=9).fit(
        dataset, align_to=dataset.archetypes()
    )
    # service_totals lets the server accept *raw volume* queries and
    # apply the paper's RCA -> RSCA transform against the frozen mix.
    frozen = profile.freeze(service_totals=dataset.totals.sum(axis=0))
    print(f"frozen {frozen.n_clusters} clusters over "
          f"{frozen.antenna_ids.size} antennas, "
          f"{len(frozen.service_names)} services")

    print("\n=== In-process serving ===")
    with ProfileService(frozen, max_batch=64, max_wait_ms=2.0,
                        n_workers=2) as service:
        client = ServeClient(service)

        answer = client.classify(frozen.features[:5])
        print(f"RSCA vectors -> clusters {answer.labels.tolist()} "
              f"(profile version {answer.version})")

        answer = client.classify_volumes(dataset.totals[:5])
        print(f"raw volumes  -> clusters {answer.labels.tolist()} "
              f"(server applied the RCA/RSCA transform)")

        repeat = client.classify(frozen.features[:5])
        print(f"repeat query -> {repeat.n_cached}/{repeat.n_vectors} rows "
              f"answered from the result cache")

        print("\n=== Hot-swap a refreshed profile under traffic ===")
        refreshed = ICNProfiler(n_clusters=9).fit(
            generate_dataset(master_seed=3, specs=reduced_specs()),
            align_to=dataset.archetypes(),
        ).freeze(service_totals=dataset.totals.sum(axis=0))
        version = service.reload(refreshed, drain_timeout=5.0)
        late = client.classify(frozen.features[:5])
        print(f"reloaded as version {version}; old version drained; "
              f"new answers carry version {late.version}")

        print("\n=== Per-cluster summaries ===")
        summary = service.cluster_summaries()
        for row in summary["clusters"][:3]:
            print(f"  cluster {row['cluster']}: occupancy "
                  f"{row['occupancy']} antennas "
                  f"({100.0 * row['share']:.1f}%)")

        print("\n=== Serving metrics ===")
        snapshot = service.metrics_snapshot()
        counters = snapshot["counters"]
        print(f"  requests {counters['requests']}, vectors "
              f"{counters['vectors_classified']}, batches "
              f"{counters['batches_executed']}, cache hit rate "
              f"{snapshot['derived']['cache_hit_rate']}")

    print("\n=== The same profile over HTTP ===")
    service = ProfileService(frozen, max_batch=64, n_workers=2)
    server = make_server(service, port=0)  # port 0 = pick a free one
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        http = HttpServeClient(f"http://{host}:{port}")
        print(f"  healthz  -> {http.healthz()}")
        answer = http.classify(frozen.features[:3])
        print(f"  classify -> labels {answer['labels']} "
              f"(version {answer['version']})")
        answer = http.classify_volumes(np.asarray(dataset.totals[:3]))
        print(f"  volumes  -> labels {answer['labels']}")
        clusters = http.clusters()
        print(f"  clusters -> {clusters['n_clusters']} clusters over "
              f"{clusters['n_antennas']} antennas")
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(5.0)


if __name__ == "__main__":
    main()
