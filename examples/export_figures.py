#!/usr/bin/env python
"""Export the paper's heatmap figures as image files (PPM).

matplotlib is unavailable in the reproduction environment, but the
binary PPM format needs no library at all — this script regenerates the
Fig. 4 RSCA heatmap and the Fig. 10 temporal panels as real images any
viewer (or `convert fig4.ppm fig4.png`) can open.

Run:  python examples/export_figures.py [output_dir]
"""

import sys
from pathlib import Path

from repro import ICNProfiler, generate_dataset
from repro.analysis.temporal import cluster_temporal_heatmap
from repro.viz import save_rsca_figure, save_temporal_figure

from quickstart import reduced_specs


def main():
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures")
    out_dir.mkdir(parents=True, exist_ok=True)

    dataset = generate_dataset(master_seed=0, specs=reduced_specs())
    profile = ICNProfiler(n_clusters=9).fit(
        dataset, align_to=dataset.archetypes()
    )

    fig4 = out_dir / "fig4_rsca_heatmap.ppm"
    save_rsca_figure(fig4, profile.features, profile.labels)
    print(f"wrote {fig4} (services x cluster-sorted antennas; "
          "blue = over-utilization, red = under)")

    for cluster in sorted(profile.cluster_sizes()):
        heatmap = cluster_temporal_heatmap(
            dataset, profile.labels, cluster, max_antennas=40
        )
        path = out_dir / f"fig10_cluster{cluster}.ppm"
        save_temporal_figure(path, heatmap)
        print(f"wrote {path} (days x hours, darker = busier)")

    print(f"\n{2 + profile.n_clusters - 1} images in {out_dir}/; convert "
          "with e.g. `magick fig4_rsca_heatmap.ppm fig4.png`")


if __name__ == "__main__":
    main()
