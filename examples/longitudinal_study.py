#!/usr/bin/env python
"""Longitudinal study: do the demand profiles persist over time?

Scenario: the paper profiles a single two-month window, and its roadmap
(Section 7) warns that new application families may spawn additional
clusters over time.  Before committing slices and caches to the profiles,
an operator should quantify their stability.  This example:

1. splits the study period into two halves and reclusters each;
2. measures month-over-month partition agreement (ARI);
3. runs the drift comparison — matched clusters, service-mix drift,
   emerging/vanished profiles;
4. runs a bootstrap stability check on the full-period profile;
5. writes the markdown operations report for the stable profile.

Run:  python examples/longitudinal_study.py
"""

from pathlib import Path

import numpy as np

from repro import ICNProfiler, generate_dataset
from repro.analysis import (
    bootstrap_stability,
    compare_partitions,
    profile_report,
    temporal_stability,
)
from repro.core.cluster import AgglomerativeClustering
from repro.core.rca import rsca

from quickstart import reduced_specs


def main():
    dataset = generate_dataset(master_seed=0, specs=reduced_specs())

    print("=== 1-2. Month-over-month stability ===")
    agreement, labelings = temporal_stability(dataset, n_windows=2,
                                              n_clusters=9)
    print(f"partition agreement between the two halves (ARI): "
          f"{agreement[0, 1]:.3f}")

    print("\n=== 3. Drift comparison ===")
    n = dataset.calendar.n_hours
    first = dataset.model.window_totals(slice(0, n // 2))
    second = dataset.model.window_totals(slice(n // 2, n))
    fa, fb = rsca(first), rsca(second)
    report = compare_partitions(fa, labelings[0], fb, labelings[1],
                                dataset.service_names)
    print(report.summary())

    print("\n=== 4. Bootstrap stability of the full-period profile ===")
    profile = ICNProfiler(n_clusters=9).fit(
        dataset, align_to=dataset.archetypes()
    )
    stability = bootstrap_stability(
        profile.features, profile.labels,
        n_replicates=5, sample_fraction=0.7,
    )
    print(f"bootstrap mean ARI: {stability.mean_ari:.3f}")
    weakest = stability.least_stable_cluster()
    print(f"least stable cluster: {weakest} "
          f"(pair persistence "
          f"{stability.per_cluster_stability[weakest]:.2f})")

    print("\n=== 5. Operations report ===")
    text = profile_report(dataset, profile, outdoor_count=500,
                          samples_per_cluster=10, max_antennas=20)
    out_path = Path("profile_report.md")
    out_path.write_text(text)
    print(f"wrote {out_path} ({len(text.splitlines())} lines); preview:")
    print("\n".join(text.splitlines()[:12]))

    print(
        "\nConclusion: the profiles are stable across the study period —"
        "\nthe Section 7 planning actions can safely key on them; re-run"
        "\nthe drift comparison each quarter to catch emerging clusters."
    )


if __name__ == "__main__":
    main()
