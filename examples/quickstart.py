#!/usr/bin/env python
"""Quickstart: generate a nationwide ICN dataset and profile it.

Runs the paper's core pipeline end to end on a reduced deployment
(~1/10 of the paper's 4,762 antennas so it finishes in seconds):

1. synthesize the operator traces (stand-in for the proprietary data),
2. transform totals to RSCA and cluster antennas (Ward, k = 9),
3. train the random-forest surrogate,
4. print the profile summary and each cluster's top services by SHAP.

Run:  python examples/quickstart.py
"""

from repro import ICNProfiler, generate_dataset
from repro.datagen.scenarios import scaled_specs
from repro.viz import render_beeswarm_table


def reduced_specs(scale=0.1, minimum=6):
    """Scale the paper's Table 1 deployment down for a fast demo."""
    return scaled_specs(scale, minimum_per_environment=minimum)


def main():
    print("Generating synthetic nationwide ICN traces ...")
    dataset = generate_dataset(master_seed=0, specs=reduced_specs())
    print(
        f"  {dataset.n_antennas} indoor antennas, "
        f"{dataset.n_services} mobile services, "
        f"{dataset.calendar.n_hours} hourly samples"
    )

    print("\nRunning the profiling pipeline (RSCA -> Ward -> surrogate) ...")
    profiler = ICNProfiler(n_clusters=9)
    # align_to renumbers the discovered clusters with the paper's ids; a
    # real study would skip it (there is no ground truth to align with).
    profile = profiler.fit(dataset, align_to=dataset.archetypes())
    print(profile.summary())

    print("\nComputing SHAP explanations (Fig. 5 style) ...")
    explanations = profile.explain(samples_per_cluster=15)
    for cluster in sorted(explanations):
        print()
        print(render_beeswarm_table(explanations[cluster], top=5))


if __name__ == "__main__":
    main()
