#!/usr/bin/env python
"""Network operations from indoor profiles: slice, cache, sleep, forecast.

Scenario: the MNO's operations team consumes the profiling output (the
paper's Section 7 roadmap) to configure the network for next week:

1. *slice templates* per cluster — busy hours, headroom, priority apps;
2. *edge caches* — per-environment content selection vs the nationwide
   one-size-fits-all policy;
3. *energy plan* — per-cluster sleep schedules and the fleet-wide saving;
4. *demand forecast* — next-week traffic per cluster, and the limits of
   purely statistical forecasting (the NBA-game surprise).

Run:  python examples/network_operations.py
"""

import numpy as np

from repro import ICNProfiler, generate_dataset
from repro.apps import (
    capacity_schedule,
    cluster_aware_gain,
    fleet_energy_saving,
    plan_energy,
    plan_slices,
)
from repro.forecast import (
    WEEK_HOURS,
    backtest_all_clusters,
    best_model_per_cluster,
)

from quickstart import reduced_specs


def main():
    dataset = generate_dataset(master_seed=0, specs=reduced_specs())
    profile = ICNProfiler(n_clusters=9).fit(
        dataset, align_to=dataset.archetypes()
    )

    print("=== 1. Slice templates (Section 7: slicing dimension) ===")
    slices = plan_slices(dataset, profile, max_antennas=25)
    for cluster in sorted(slices):
        print(" ", slices[cluster].describe())
    commuter_schedule = capacity_schedule(slices[0])
    active = ", ".join(
        f"{h:02d}" for h in range(24) if commuter_schedule[h] == 1.0
    )
    print(f"  commuter slice full-capacity hours: [{active}]")

    print("\n=== 2. Edge caching (Section 7: content caching) ===")
    aware, global_hit = cluster_aware_gain(
        dataset.totals, profile.labels, dataset.catalog, budget=10
    )
    print(f"  cluster-aware cache hit:  {aware:.1%}")
    print(f"  nationwide cache hit:     {global_hit:.1%}")
    print(f"  gain from environment-awareness: "
          f"{(aware - global_hit):.1%} of all traffic")

    print("\n=== 3. Energy adaptation (Section 7: energy schemes) ===")
    energy = plan_energy(dataset, profile, max_antennas=25)
    for cluster in sorted(energy):
        print(" ", energy[cluster].describe())
    fleet = fleet_energy_saving(energy, profile.cluster_sizes())
    print(f"  fleet-wide energy saving: {fleet:.1%}")

    print("\n=== 4. Next-week demand forecast ===")
    results = backtest_all_clusters(
        dataset, profile.labels, horizon=WEEK_HOURS, max_antennas=15
    )
    best = best_model_per_cluster(results)
    for cluster in sorted(best):
        score = best[cluster]
        print(f"  cluster {cluster}: {score.model} "
              f"(normalized MAE {score.nmae:.2f})")
    print(
        "\n  caveat: statistical forecasts cover routine weekly demand;"
        "\n  unscheduled events (e.g. the 19 Jan NBA game) need event"
        "\n  calendars on top — see benchmarks/test_ext_forecasting.py"
    )


if __name__ == "__main__":
    main()
