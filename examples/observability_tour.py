#!/usr/bin/env python
"""A tour of ``repro.obs``: metrics, traces, structured logs, profiling.

Scenario: the pipeline runs unattended — a nightly refit, a streaming
ingester, a serving node — and an operator needs to see inside it.
This example enables tracing, runs the full fit + SHAP pipeline, and
then walks the four telemetry surfaces: the Chrome-loadable trace of
the pipeline's stages, the Prometheus-text metrics registry, JSON-line
structured logs correlated to their spans, and per-stage wall/CPU/
memory profiles.

Run:  python examples/observability_tour.py
Then: load trace.json in chrome://tracing (or ui.perfetto.dev) for a
      flamegraph of where the pipeline spent its time.
"""

import sys

from repro import ICNProfiler, generate_dataset
from repro.obs import (
    disable_tracing,
    enable_tracing,
    get_logger,
    get_registry,
    profile_stage,
    set_log_stream,
    span,
)

from quickstart import reduced_specs


def main():
    print("=== Trace the full pipeline ===")
    store = enable_tracing(clear=True)
    dataset = generate_dataset(master_seed=0, specs=reduced_specs())
    with span("nightly.refit", antennas=dataset.n_antennas):
        profile = ICNProfiler(n_clusters=9).fit(
            dataset, align_to=dataset.archetypes()
        )
        profile.explain(samples_per_cluster=5)

    spans = store.spans()
    print(f"captured {len(spans)} spans:")
    for record in spans:
        indent = "  " if record.parent_id else ""
        print(f"  {indent}{record.name:<22} "
              f"{record.duration_s * 1e3:8.1f} ms  {record.attributes}")

    n_events = store.export_chrome("trace.json")
    print(f"wrote trace.json ({n_events} events) — "
          f"open in chrome://tracing")

    print("\n=== The metrics registry (Prometheus text) ===")
    registry = get_registry()
    stage_lines = [
        line for line in registry.prometheus_text().splitlines()
        if line.startswith("#") or "_count" in line
    ]
    print("\n".join(stage_lines))

    print("\n=== Structured logs join to their spans ===")
    set_log_stream(sys.stdout)  # JSON lines go to stderr by default
    log = get_logger("examples.tour")
    with span("tour.logging") as record:
        log.info("inside_span", note="carries trace_id + span_id")
    log.info("outside_span", note="no correlation ids")
    set_log_stream(None)
    print(f"(the first line's span_id matches span "
          f"{record.span_id!r} above)")

    print("\n=== Per-stage profiling ===")
    with profile_stage("tour.refit", trace_memory=True) as stats:
        ICNProfiler(n_clusters=9).fit(dataset)
    print(stats.summary())

    print("\n=== Exception safety: failed spans stay visible ===")
    try:
        with span("tour.failing"):
            raise ValueError("synthetic failure")
    except ValueError:
        pass
    failed = store.spans()[-1]
    print(f"span {failed.name!r}: error={failed.error}, "
          f"error_type={failed.attributes['error_type']}")

    disable_tracing()
    print("\ntracing disabled — span() is now a no-op "
          "(see benchmarks/test_perf_obs.py for the overhead numbers)")


if __name__ == "__main__":
    main()
