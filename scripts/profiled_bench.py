#!/usr/bin/env python3
"""Profiled serve benchmark: overhead gate + observability artifacts.

Runs the micro-batched serving benchmark twice — bare, then under the
continuous sampling profiler — and fails (exit 1) when profiling slows
the benchmark down by more than the budget (default 5%).  This is the
CI teeth behind the profiler's "bounded overhead" contract: the duty-
cycle throttle in :class:`repro.obs.prof.ContinuousProfiler` must keep
an always-on profile effectively free.

Alongside the gate it produces the observability artifacts CI uploads:

* ``prof.speedscope.json`` — the profiled run's merged stacks, ready to
  drop onto https://www.speedscope.app.
* ``prof.collapsed.txt`` — the same stacks in flamegraph.pl format.
* ``trace_merged.json`` — a Chrome ``chrome://tracing`` file assembled
  from *two processes*: this orchestrator's spans plus a child process
  that joined the trace through a ``traceparent`` handed over its
  environment, proving cross-boundary propagation end to end.
* ``profiled_bench.json`` — the machine-readable summary.

Usage::

    python scripts/profiled_bench.py --queries 600 --output-dir artifacts
"""

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.cluster import AgglomerativeClustering  # noqa: E402
from repro.core.rca import rsca  # noqa: E402
from repro.ml.forest import RandomForestClassifier  # noqa: E402
from repro.obs.prof import ContinuousProfiler  # noqa: E402
from repro.obs.registry import MetricsRegistry  # noqa: E402
from repro.obs.trace import (  # noqa: E402
    current_context,
    disable_tracing,
    enable_tracing,
    span,
)
from repro.serve import run_serve_benchmark  # noqa: E402
from repro.stream import FrozenProfile  # noqa: E402

#: The child process: joins the parent's trace via the traceparent in
#: its environment, does a little traced work, exports its spans.
_CHILD_SCRIPT = """
import os, sys
from repro.obs.trace import TraceContext, enable_tracing, span

store = enable_tracing(capacity=64)
parent = TraceContext.from_traceparent(os.environ["BENCH_TRACEPARENT"])
assert parent is not None, "child received no usable traceparent"
with span("child.process", parent=parent, pid=os.getpid()):
    with span("child.work"):
        sum(i * i for i in range(10000))
store.export_spans(sys.argv[1])
"""


def build_frozen(n_antennas=400, n_services=24, n_clusters=4, seed=0):
    """A small synthetic FrozenProfile — fast to build, real hot paths."""
    rng = np.random.default_rng(seed)
    totals = rng.lognormal(0.0, 1.0, size=(n_antennas, n_services))
    features = rsca(totals)
    labels = AgglomerativeClustering(
        n_clusters=n_clusters, linkage="ward"
    ).fit_predict(features)
    forest = RandomForestClassifier(n_estimators=10, max_depth=5,
                                    random_state=0)
    forest.fit(features, labels)
    clusters = np.unique(labels)
    centroids = np.vstack(
        [features[labels == c].mean(axis=0) for c in clusters]
    )
    return FrozenProfile(
        features=features,
        labels=labels,
        antenna_ids=np.arange(n_antennas, dtype=np.int64),
        clusters=clusters,
        centroids=centroids,
        service_names=tuple(f"service_{j}" for j in range(n_services)),
        surrogate=forest,
        service_totals=totals.sum(axis=0),
    )


def timed_bench(frozen, n_queries, workers, rounds=3):
    """Best-of-``rounds`` wall time (noise floors, not noise averages)."""
    best_s = float("inf")
    best_report = None
    for _ in range(rounds):
        started = time.perf_counter()
        report = run_serve_benchmark(
            frozen, n_queries=n_queries, worker_counts=(workers,)
        )
        elapsed = time.perf_counter() - started
        if elapsed < best_s:
            best_s, best_report = elapsed, report
    return best_s, best_report


def cross_process_trace(output_dir: Path) -> dict:
    """Spawn a child that joins our trace; merge and export the result."""
    store = enable_tracing(capacity=256)
    child_spans = output_dir / "child_spans.json"
    merged_path = output_dir / "trace_merged.json"
    try:
        with span("bench.orchestrate", pid=os.getpid()):
            context = current_context()
            assert context is not None
            env = dict(os.environ)
            env["BENCH_TRACEPARENT"] = context.to_traceparent()
            env["PYTHONPATH"] = (
                str(REPO_ROOT / "src") + os.pathsep
                + env.get("PYTHONPATH", "")
            )
            subprocess.run(
                [sys.executable, "-c", _CHILD_SCRIPT, str(child_spans)],
                env=env, check=True, timeout=120,
            )
            trace_id = context.trace_id
        merged = store.merge_file(child_spans)
        events = store.export_chrome(merged_path)
        pids = {record.pid for record in store.spans()
                if record.trace_id == trace_id}
        linked = sum(
            1 for record in store.spans()
            if record.name == "child.process"
            and record.trace_id == trace_id
        )
    finally:
        disable_tracing()
    return {
        "trace_id": trace_id,
        "merged_spans": merged,
        "chrome_events": events,
        "processes_in_trace": len(pids),
        "child_spans_joined": linked,
        "artifact": str(merged_path),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=600,
                        help="queries per benchmark run (default 600)")
    parser.add_argument("--workers", type=int, default=2,
                        help="micro-batcher workers (default 2)")
    parser.add_argument("--hz", type=float, default=50.0,
                        help="profiler sampling rate (default 50)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="rounds per condition; best wall time wins "
                             "(default 3)")
    parser.add_argument("--max-overhead-pct", type=float, default=5.0,
                        help="fail when profiling costs more than this "
                             "percent of bare wall time (default 5)")
    parser.add_argument("--output-dir", default="artifacts/prof",
                        help="artifact directory (default artifacts/prof)")
    args = parser.parse_args(argv)

    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)

    print("building frozen profile ...", flush=True)
    frozen = build_frozen()

    # Warm caches and code paths so the bare/profiled comparison is not
    # measuring first-touch effects.
    timed_bench(frozen, max(50, args.queries // 10), args.workers, rounds=1)

    print(f"bare run: {args.queries} queries x {args.rounds} ...",
          flush=True)
    bare_s, bare_report = timed_bench(
        frozen, args.queries, args.workers, rounds=args.rounds
    )

    print(f"profiled run: {args.queries} queries x {args.rounds} "
          f"at {args.hz} Hz ...", flush=True)
    profiler = ContinuousProfiler(hz=args.hz, window_s=10.0,
                                  registry=MetricsRegistry())
    with profiler:
        profiled_s, profiled_report = timed_bench(
            frozen, args.queries, args.workers, rounds=args.rounds
        )
    speedscope_path = output_dir / "prof.speedscope.json"
    collapsed_path = output_dir / "prof.collapsed.txt"
    n_samples = profiler.export_speedscope(speedscope_path)
    profiler.export_collapsed(collapsed_path)
    stats = profiler.stats()

    overhead_pct = (profiled_s - bare_s) / bare_s * 100.0

    print("assembling cross-process trace ...", flush=True)
    trace = cross_process_trace(output_dir)

    summary = {
        "queries": args.queries,
        "workers": args.workers,
        "bare_seconds": bare_s,
        "profiled_seconds": profiled_s,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": args.max_overhead_pct,
        "bare_qps": bare_report["batched"][0]["qps"],
        "profiled_qps": profiled_report["batched"][0]["qps"],
        "profiler": {
            "hz": args.hz,
            "snapshot_passes": stats["snapshot_passes"],
            "stacks": stats["stacks"],
            "self_reported_overhead": stats["overhead_ratio"],
            "speedscope_samples": n_samples,
        },
        "trace": trace,
        "artifacts": {
            "speedscope": str(speedscope_path),
            "collapsed": str(collapsed_path),
            "trace_merged": trace["artifact"],
        },
    }
    summary_path = output_dir / "profiled_bench.json"
    summary_path.write_text(json.dumps(summary, indent=2))

    print(f"bare     {bare_s:8.3f} s   "
          f"({summary['bare_qps']:9.1f} qps)")
    print(f"profiled {profiled_s:8.3f} s   "
          f"({summary['profiled_qps']:9.1f} qps)   "
          f"{stats['snapshot_passes']} snapshot passes")
    print(f"overhead {overhead_pct:+7.2f}%   budget {args.max_overhead_pct}%")
    print(f"trace    {trace['processes_in_trace']} processes in trace "
          f"{trace['trace_id']}, {trace['merged_spans']} spans merged")
    print(f"summary  {summary_path}")

    failures = []
    if overhead_pct > args.max_overhead_pct:
        failures.append(
            f"profiler overhead {overhead_pct:.2f}% exceeds the "
            f"{args.max_overhead_pct}% budget"
        )
    if stats["snapshot_passes"] == 0 or n_samples == 0:
        failures.append("profiler captured no samples during the bench")
    if trace["processes_in_trace"] < 2 or trace["child_spans_joined"] < 1:
        failures.append(
            "cross-process trace did not join spans from both processes"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
