#!/usr/bin/env python3
"""Run the serving benchmark and write BENCH_serve.json.

Thin wrapper over ``repro-icn bench-serve`` that works from a source
checkout without installation::

    python scripts/bench.py --queries 2000 --workers 1,4,8

All arguments are forwarded verbatim; see ``repro-icn bench-serve
--help`` for the full list.  The report lands in ``BENCH_serve.json``
unless ``--output`` says otherwise.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main  # noqa: E402 - after sys.path setup

if __name__ == "__main__":
    sys.exit(main(["bench-serve", *sys.argv[1:]]))
