#!/usr/bin/env python3
"""Run a repo benchmark and write its ``BENCH_*.json`` report.

Thin wrapper over the ``repro-icn`` benchmark subcommands that works
from a source checkout without installation.  The first argument picks
the benchmark; anything else is forwarded verbatim::

    python scripts/bench.py bench-serve --queries 2000 --workers 1,4,8
    python scripts/bench.py bench-forest --frozen frozen.npz --queries 512

For backward compatibility with existing CI invocations, omitting the
subcommand runs ``bench-serve``::

    python scripts/bench.py --queries 800 --workers 1,4

See ``repro-icn bench-serve --help`` / ``repro-icn bench-forest --help``
for the full argument lists.  Reports land in ``BENCH_serve.json`` /
``BENCH_forest.json`` unless ``--output`` says otherwise.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main  # noqa: E402 - after sys.path setup

#: Benchmark subcommands this wrapper fronts.
BENCHMARKS = ("bench-serve", "bench-forest")


def dispatch(argv):
    """Resolve the wrapper's argv into a full ``repro-icn`` argv."""
    if argv and argv[0] in BENCHMARKS:
        return list(argv)
    return ["bench-serve", *argv]


if __name__ == "__main__":
    sys.exit(main(dispatch(sys.argv[1:])))
