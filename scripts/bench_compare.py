#!/usr/bin/env python
"""Bench-regression guard: diff a fresh ``BENCH_serve.json`` vs the baseline.

The committed baseline was measured at paper scale (4,762 reference
antennas) on developer hardware, while CI re-benches a reduced-scale
profile on shared runners — absolute qps numbers are not comparable
across those worlds.  The guard therefore compares *scale-free* shape
metrics that hold on any hardware at any scale:

* ``speedup`` — best micro-batched qps over unbatched qps;
* ``batched_w{N}_vs_unbatched`` — per-worker-count batched qps
  normalized by the same report's own unbatched qps (numerator and
  denominator both scale with the reference-antenna count, so the
  ratio survives rescaling).

Absolute qps values — and ``cached_vs_unbatched``, whose numerator is
a dictionary lookup that does *not* scale with profile size — are
compared only when both reports declare an identical benchmark config
(same reference scale, query count, batch limit), i.e. when a
baseline refresh is being validated on the same class of machine.

A metric regresses when ``fresh < baseline * (1 - max_regression)``;
any regression fails the run (exit 1).  Improvements and new metrics
never fail.

The serve-report shape above is only the *default*.  Any pair of
``BENCH_*.json`` reports can be guarded by handing ``--spec`` a JSON
file that names the metrics via dotted paths into the report::

    {
      "config_keys": ["n_queries", "n_clusters"],
      "metrics": {"unbatched_qps": "unbatched.qps"},
      "ratios":  {"w4_vs_unbatched": ["batched[workers=4].qps",
                                      "unbatched.qps"]}
    }

``ratios`` (numerator path / denominator path) are scale-free and
always compared; ``metrics`` are absolute values, compared only when
every ``config_keys`` entry matches between the two reports' ``config``
blocks (omit ``config_keys`` to always compare them).  Paths support
``a.b.c`` nesting, ``list[0]`` integer indexing, and
``list[key=value]`` selection of the first matching object.  A path
that resolves to nothing in one report skips that metric rather than
failing; a path that resolves to nothing in *either* report is a spec
error (typo'd path or selector) and fails with a message naming the
offending path instead of a bare "no comparable metrics".

Usage::

    python scripts/bench_compare.py --baseline BENCH_serve.json \
        --fresh BENCH_fresh.json --max-regression 0.30
    python scripts/bench_compare.py --baseline BENCH_obs.json \
        --fresh BENCH_obs_fresh.json --spec specs/obs_bench.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Dict, Optional, Sequence, Tuple


#: Config keys that must all match before absolute qps is comparable.
CONFIG_KEYS = (
    "n_reference_antennas",
    "n_services",
    "n_queries",
    "n_clusters",
    "max_batch",
    "max_wait_ms",
)


#: One ``[...]`` selector inside a path token.
_SELECTOR = re.compile(r"\[([^\]]*)\]")


def load_report(path: str) -> dict:
    with open(path) as handle:
        report = json.load(handle)
    if not isinstance(report, dict):
        raise SystemExit(f"{path}: not a benchmark report object")
    return report


def extract_path(report: object, path: str):
    """Resolve a dotted metric path inside a report, or ``None``.

    Grammar per ``.``-separated token: a dict key, optionally followed
    by selectors — ``[3]`` indexes a list, ``[workers=4]`` picks the
    first list element whose field stringifies to the given value.
    Every miss (wrong type, absent key, no match, index out of range)
    returns ``None`` so callers can skip instead of crash.
    """
    current = report
    for token in path.split("."):
        name = token.split("[", 1)[0]
        if name:
            if not isinstance(current, dict) or name not in current:
                return None
            current = current[name]
        for selector in _SELECTOR.findall(token):
            if not isinstance(current, list):
                return None
            if "=" in selector:
                key, _, want = selector.partition("=")
                matches = [
                    entry for entry in current
                    if isinstance(entry, dict) and str(entry.get(key)) == want
                ]
                if not matches:
                    return None
                current = matches[0]
            else:
                try:
                    index = int(selector)
                except ValueError:
                    return None
                if not -len(current) <= index < len(current):
                    return None
                current = current[index]
    return current


def load_spec(path: str) -> dict:
    """Load and validate a ``--spec`` metric-path file."""
    with open(path) as handle:
        spec = json.load(handle)
    if not isinstance(spec, dict):
        raise SystemExit(f"{path}: spec must be a JSON object")
    for name, entry in (spec.get("ratios") or {}).items():
        if not (isinstance(entry, list) and len(entry) == 2
                and all(isinstance(p, str) for p in entry)):
            raise SystemExit(
                f"{path}: ratio {name!r} must be [numerator_path, "
                f"denominator_path]"
            )
    for name, entry in (spec.get("metrics") or {}).items():
        if not isinstance(entry, str):
            raise SystemExit(f"{path}: metric {name!r} must be a path string")
    return spec


def unresolved_spec_paths(
    baseline: dict, fresh: dict, spec: dict
) -> Dict[str, str]:
    """Spec paths that resolve to no numeric value in *either* report.

    A path absent from one report is routine (CI benches a subset); a
    path absent from both means the spec names a metric that does not
    exist — a typo'd dotted path or a ``[key=value]`` selector matching
    nothing — which should be reported as a spec error, not silently
    produce "no comparable metrics".  Returns ``path -> owning metric``
    for the error message.
    """
    def resolves(path: str) -> bool:
        for report in (baseline, fresh):
            if isinstance(extract_path(report, path), (int, float)):
                return True
        return False

    missing: Dict[str, str] = {}
    for name, (num_path, den_path) in (spec.get("ratios") or {}).items():
        for path in (num_path, den_path):
            if not resolves(path):
                missing[path] = f"ratio {name!r}"
    for name, path in (spec.get("metrics") or {}).items():
        if not resolves(path):
            missing[path] = f"metric {name!r}"
    return missing


def spec_metrics(
    report: dict, spec: dict
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """``(ratios, absolutes)`` a spec extracts from one report."""
    ratios: Dict[str, float] = {}
    for name, (num_path, den_path) in (spec.get("ratios") or {}).items():
        numerator = extract_path(report, num_path)
        denominator = extract_path(report, den_path)
        if (isinstance(numerator, (int, float))
                and isinstance(denominator, (int, float)) and denominator):
            ratios[name] = float(numerator) / float(denominator)
    absolutes: Dict[str, float] = {}
    for name, path in (spec.get("metrics") or {}).items():
        value = extract_path(report, path)
        if isinstance(value, (int, float)):
            absolutes[name] = float(value)
    return ratios, absolutes


def ratio_metrics(report: dict) -> Dict[str, float]:
    """Scale-free shape metrics of one benchmark report."""
    metrics: Dict[str, float] = {}
    unbatched_qps = (report.get("unbatched") or {}).get("qps")
    if not unbatched_qps:
        return metrics
    speedup = report.get("speedup")
    if isinstance(speedup, (int, float)):
        metrics["speedup"] = float(speedup)
    for entry in report.get("batched") or []:
        workers = entry.get("workers")
        qps = entry.get("qps")
        if workers is not None and qps:
            metrics[f"batched_w{workers}_vs_unbatched"] = (
                float(qps) / float(unbatched_qps)
            )
    return metrics


def absolute_metrics(report: dict) -> Dict[str, float]:
    """Raw qps values — only meaningful between identical configs."""
    metrics: Dict[str, float] = {}
    unbatched_qps = (report.get("unbatched") or {}).get("qps")
    if unbatched_qps:
        metrics["unbatched_qps"] = float(unbatched_qps)
        cached = (report.get("cached") or {}).get("qps")
        if cached:
            metrics["cached_vs_unbatched"] = (
                float(cached) / float(unbatched_qps)
            )
    for entry in report.get("batched") or []:
        workers = entry.get("workers")
        qps = entry.get("qps")
        if workers is not None and qps:
            metrics[f"batched_w{workers}_qps"] = float(qps)
    cached_qps = (report.get("cached") or {}).get("qps")
    if cached_qps:
        metrics["cached_qps"] = float(cached_qps)
    return metrics


def configs_comparable(
    baseline: dict, fresh: dict,
    keys: Sequence[str] = CONFIG_KEYS,
) -> bool:
    base_cfg = baseline.get("config") or {}
    fresh_cfg = fresh.get("config") or {}
    return all(
        base_cfg.get(key) == fresh_cfg.get(key) for key in keys
    )


def compare(baseline: dict, fresh: dict, max_regression: float,
            spec: Optional[dict] = None):
    """Returns ``(rows, failures)`` for the metric comparison table."""
    if spec is not None:
        base_metrics, base_abs = spec_metrics(baseline, spec)
        fresh_metrics, fresh_abs = spec_metrics(fresh, spec)
        keys = spec.get("config_keys") or ()
        if configs_comparable(baseline, fresh, keys=keys):
            base_metrics.update(base_abs)
            fresh_metrics.update(fresh_abs)
    else:
        base_metrics = ratio_metrics(baseline)
        fresh_metrics = ratio_metrics(fresh)
        if configs_comparable(baseline, fresh):
            base_metrics.update(absolute_metrics(baseline))
            fresh_metrics.update(absolute_metrics(fresh))
    rows = []
    failures = []
    compared = 0
    for name in sorted(base_metrics):
        if name not in fresh_metrics:
            # Not measured this run (e.g. CI benches fewer worker
            # counts than the committed baseline) — skip, don't fail.
            rows.append((name, base_metrics[name], None, None, "skipped"))
            continue
        compared += 1
        base_value = base_metrics[name]
        fresh_value = fresh_metrics[name]
        if base_value <= 0:
            continue
        change = (fresh_value - base_value) / base_value
        regressed = change < -max_regression
        rows.append((
            name, base_value, fresh_value, change,
            "REGRESSED" if regressed else "ok",
        ))
        if regressed:
            failures.append(name)
    if compared == 0:
        rows = []
    return rows, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when the fresh serving benchmark regresses "
                    "past the allowed fraction versus the baseline"
    )
    parser.add_argument("--baseline", default="BENCH_serve.json",
                        help="committed baseline report")
    parser.add_argument("--fresh", required=True,
                        help="freshly measured report")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional drop per metric "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--spec",
                        help="JSON metric-path spec (metrics/ratios/"
                             "config_keys) replacing the built-in "
                             "serve-report metrics")
    args = parser.parse_args(argv)
    if not 0 < args.max_regression < 1:
        parser.error(
            f"--max-regression must be in (0, 1), got {args.max_regression}"
        )

    baseline = load_report(args.baseline)
    fresh = load_report(args.fresh)
    spec = load_spec(args.spec) if args.spec else None
    if spec is not None:
        missing = unresolved_spec_paths(baseline, fresh, spec)
        if missing:
            print(f"error: {args.spec} names metric paths that match "
                  f"nothing in {args.baseline} or {args.fresh}:")
            for path, owner in sorted(missing.items()):
                print(f"  {owner}: path {path!r} resolved to no numeric "
                      f"value in either report")
            print("check the dotted path spelling and any [key=value] "
                  "selectors against the report JSON")
            return 1
    rows, failures = compare(baseline, fresh, args.max_regression, spec=spec)
    if not rows:
        print("no comparable metrics found between the two reports")
        return 1

    comparable = configs_comparable(
        baseline, fresh,
        keys=(spec.get("config_keys") or ()) if spec else CONFIG_KEYS,
    )
    scope = (
        "ratios + absolute metrics (identical configs)"
        if comparable
        else "scale-free ratios only (configs differ)"
    )
    print(f"bench comparison: {scope}; "
          f"allowed regression {args.max_regression:.0%}")
    header = f"{'metric':<28} {'baseline':>12} {'fresh':>12} {'change':>9}"
    print(header)
    print("-" * len(header))
    for name, base_value, fresh_value, change, verdict in rows:
        if fresh_value is None:
            print(f"{name:<28} {base_value:>12.3f} {'—':>12} {'—':>9}  "
                  f"{verdict}")
        else:
            print(f"{name:<28} {base_value:>12.3f} {fresh_value:>12.3f} "
                  f"{change:>+8.1%}  {verdict}")
    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed more than "
              f"{args.max_regression:.0%}: {', '.join(failures)}")
        return 1
    print("\nOK: no metric regressed past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
