"""Performance benchmarks of the concurrent query-serving subsystem.

Times the serving hot paths statistically (multi-round, like
``test_perf_stream.py``): unbatched single-vector classification,
micro-batched throughput with many requests in flight, cache-hit
latency on a hot working set, and the full ``run_serve_benchmark``
harness at reduced scale.  Throughputs are recorded in
``benchmark.extra_info`` rather than asserted — absolute numbers vary
with CI hardware; the committed ``BENCH_serve.json`` records the
calibrated run.
"""

import numpy as np
import pytest

from repro.core.cluster import AgglomerativeClustering
from repro.core.rca import rsca
from repro.ml.forest import RandomForestClassifier
from repro.serve import ProfileService, run_serve_benchmark
from repro.stream import FrozenProfile

N_ANTENNAS = 800
N_SERVICES = 73
N_QUERIES = 400

SERVICES = tuple(f"service_{j}" for j in range(N_SERVICES))


@pytest.fixture(scope="module")
def frozen():
    """A frozen profile at streaming-benchmark scale (800 x 73)."""
    rng = np.random.default_rng(0)
    totals = rng.lognormal(0.0, 1.0, size=(N_ANTENNAS, N_SERVICES))
    features = rsca(totals)
    labels = AgglomerativeClustering(n_clusters=9,
                                     linkage="ward").fit_predict(features)
    surrogate = RandomForestClassifier(n_estimators=20, max_depth=6,
                                       random_state=0)
    surrogate.fit(features, labels)
    clusters = np.unique(labels)
    centroids = np.vstack(
        [features[labels == c].mean(axis=0) for c in clusters]
    )
    return FrozenProfile(
        features=features,
        labels=labels,
        antenna_ids=np.arange(N_ANTENNAS, dtype=np.int64),
        clusters=clusters,
        centroids=centroids,
        service_names=SERVICES,
        surrogate=surrogate,
        service_totals=totals.sum(axis=0),
    )


@pytest.fixture(scope="module")
def queries(frozen):
    """A block of single-row queries cycled from the training features."""
    rng = np.random.default_rng(1)
    rows = frozen.features[rng.integers(0, N_ANTENNAS, size=N_QUERIES)]
    return rows + rng.normal(0.0, 1e-4, size=rows.shape)


def test_perf_unbatched_classify(benchmark, frozen, queries):
    """Sequential single-vector queries with batching disabled."""
    with ProfileService(frozen, max_batch=1, n_workers=1,
                        cache_size=0) as service:

        def drain():
            done = 0
            for row in queries:
                done += service.classify(row[None, :]).n_vectors
            return done

        done = benchmark(drain)
    assert done == N_QUERIES
    if benchmark.stats is not None:
        benchmark.extra_info["qps"] = N_QUERIES / benchmark.stats.stats.mean


def test_perf_batched_throughput(benchmark, frozen, queries):
    """Async submission keeps the micro-batcher full; vectorized vote."""
    with ProfileService(frozen, max_batch=64, max_wait_ms=2.0,
                        n_workers=4, max_queue_depth=4096,
                        cache_size=0) as service:

        def drain():
            pending = [service.submit(row[None, :]) for row in queries]
            return sum(p.result(timeout=60.0).n_vectors for p in pending)

        done = benchmark(drain)
    assert done == N_QUERIES
    if benchmark.stats is not None:
        benchmark.extra_info["qps"] = N_QUERIES / benchmark.stats.stats.mean
    benchmark.extra_info["mean_batch_size"] = (
        service.metrics.mean_batch_size()
    )


def test_perf_cache_hit_latency(benchmark, frozen):
    """Repeated hot-set queries answered from the LRU cache."""
    hot = frozen.features[:64]
    with ProfileService(frozen, max_batch=64, n_workers=2,
                        cache_size=4096) as service:
        service.classify(hot)  # warm the cache

        def replay():
            return service.classify(hot).n_cached

        cached = benchmark(replay)
    assert cached == 64
    benchmark.extra_info["hit_rate"] = service.cache.stats()["hit_rate"]


def test_perf_serve_harness(benchmark, frozen):
    """The full bench-serve harness at reduced scale, single round."""
    report = benchmark.pedantic(
        lambda: run_serve_benchmark(frozen, n_queries=300,
                                    worker_counts=(1, 4),
                                    max_batch=64, hot_set=32),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert report["unbatched"]["qps"] > 0
    # First pass over the hot set misses compulsorily: 268/300 hits.
    assert report["cached"]["hit_rate"] > 0.8
    benchmark.extra_info["speedup"] = report["speedup"]
    benchmark.extra_info["best_batched_qps"] = max(
        entry["qps"] for entry in report["batched"]
    )
