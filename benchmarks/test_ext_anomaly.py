"""Extension — automatic discovery of the paper's temporal anomalies.

Section 6 of the paper identifies its calendar anomalies by inspecting
heatmaps: the 19 Jan national strike (commuter clusters near-empty), the
NBA Paris Game that same evening (Accor Arena burst), and the Sirha Lyon
fair (19-24 Jan, Eurexpo).  The anomaly detector should recover all three
from the raw series, without being told the calendar.
"""

import numpy as np

from repro.apps.anomaly import anomalies_on_date, detect_anomalies
from repro.datagen.calendar import SIRHA_DAYS, STRIKE_DAY
from repro.datagen.environments import EnvironmentType

from conftest import run_once


def test_extension_anomaly_discovery(benchmark, dataset, profile):
    hours = dataset.calendar.hours

    def detect_everywhere():
        out = {}
        # Commuter clusters: mean member series.
        for cluster in (0, 4):
            members = np.flatnonzero(profile.labels == cluster)[:60]
            series = dataset.hourly_total(antenna_ids=members).mean(axis=0)
            out[f"cluster{cluster}"] = detect_anomalies(series)
        # The two single-venue anecdotes.
        nba_site = next(
            s.site_id for s in dataset.sites
            if s.env_type == EnvironmentType.STADIUM and s.is_paris
        )
        sirha_site = next(
            s.site_id for s in dataset.sites
            if s.env_type == EnvironmentType.EXPO and s.city == "Lyon"
        )
        for name, site_id in (("nba", nba_site), ("sirha", sirha_site)):
            members = [a.antenna_id for a in dataset.antennas
                       if a.site_id == site_id]
            series = dataset.hourly_total(antenna_ids=members).mean(axis=0)
            out[name] = detect_anomalies(series)
        return out

    anomalies = run_once(benchmark, detect_everywhere)

    # The strike is a drought at both Paris commuter clusters.
    for cluster in (0, 4):
        droughts = anomalies_on_date(
            anomalies[f"cluster{cluster}"], hours, STRIKE_DAY, kind="drought"
        )
        assert droughts, f"strike drought missing in cluster {cluster}"

    # The NBA evening is a surge at the hosting arena.
    nba_surges = anomalies_on_date(anomalies["nba"], hours, STRIKE_DAY,
                                   kind="surge")
    assert nba_surges, "NBA surge missing at the arena"

    # The Sirha fair surges on multiple consecutive days at Eurexpo.
    sirha_days_hit = sum(
        1 for offset in range(5)
        if anomalies_on_date(anomalies["sirha"], hours,
                             SIRHA_DAYS[0] + np.timedelta64(offset, "D"),
                             kind="surge")
    )
    assert sirha_days_hit >= 3, (
        f"Sirha fair surges on only {sirha_days_hit} days"
    )

    print(f"\n[ext/anomaly] strike droughts found in clusters 0 and 4; "
          f"NBA surge at the arena ({len(nba_surges)} span); "
          f"Sirha surges on {sirha_days_hit}/5 fair days — all three "
          "Section 6 anecdotes recovered without calendar knowledge")
