"""Fig. 4 — RSCA heatmap: per-cluster service-utilization signatures.

Paper claims: antennas of the same cluster share a visual RSCA pattern
distinct from other clusters; blue (over-utilization) and red (under)
bands are cluster-specific.
"""

import numpy as np

from repro.core.rca import rsca

from conftest import run_once


def test_fig4_cluster_signatures(benchmark, dataset, profile):
    features = run_once(benchmark, lambda: rsca(dataset.totals))
    labels = profile.labels
    clusters = sorted(profile.cluster_sizes())

    centroids = np.vstack([
        features[labels == c].mean(axis=0) for c in clusters
    ])

    # Within-cluster coherence: an antenna's RSCA vector correlates more
    # with its own cluster centroid than with any other centroid.
    rng = np.random.default_rng(0)
    sample = rng.choice(features.shape[0], size=400, replace=False)
    own_wins = 0
    for i in sample:
        corr = [
            np.corrcoef(features[i], centroids[j])[0, 1]
            for j in range(len(clusters))
        ]
        if int(np.argmax(corr)) == clusters.index(int(labels[i])):
            own_wins += 1
    coherence = own_wins / sample.size
    assert coherence > 0.9, f"per-cluster signature too weak: {coherence:.2f}"

    # Between-cluster distinctness: no two centroids nearly identical.
    max_cross = -1.0
    for a in range(len(clusters)):
        for b in range(a + 1, len(clusters)):
            max_cross = max(
                max_cross, float(np.corrcoef(centroids[a], centroids[b])[0, 1])
            )
    assert max_cross < 0.95, "two clusters share an identical signature"

    # Qualitative bands: the commuter clusters' music services are blue
    # (over), the office cluster's are red (under).
    spotify = dataset.catalog.index_of("Spotify")
    teams = dataset.catalog.index_of("Microsoft Teams")
    # Note: the global music share is itself inflated by the (large)
    # commuter clusters, which caps their own RSCA advantage.
    assert centroids[clusters.index(0), spotify] > 0.1
    assert centroids[clusters.index(3), spotify] < -0.2
    assert centroids[clusters.index(3), teams] > 0.2

    print(f"\n[fig4] signature coherence: {coherence:.1%} of antennas "
          "closest to their own cluster pattern")
    print(f"[fig4] max cross-cluster signature correlation: {max_cross:.2f}")
