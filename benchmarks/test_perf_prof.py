"""Continuous-profiler overhead benchmarks.

The profiler's contract is "always on, effectively free": a duty-cycle
throttle keeps sampling under ``max_overhead`` of wall time no matter
how many threads exist.  These benchmarks put numbers behind that — a
serving workload is timed bare and again with the profiler running, and
the slowdown must stay under the 5% acceptance bound (with the same 2x
CI-jitter headroom the other overhead benches use; the calibrated
ratio lands in ``extra_info``).  The cost of one snapshot pass rides
along so regressions in the sampler itself are visible directly.
"""

import time

import numpy as np
import pytest

from repro.core.cluster import AgglomerativeClustering
from repro.core.rca import rsca
from repro.ml.forest import RandomForestClassifier
from repro.obs.prof import ContinuousProfiler
from repro.obs.registry import MetricsRegistry
from repro.serve import ProfileService
from repro.stream import FrozenProfile

N_ANTENNAS = 800
N_SERVICES = 73
BATCH_ROWS = 64

#: Interleaved timing rounds; the minimum round is compared.
ROUNDS = 10
#: Classify calls per round.
INNER = 20

#: Acceptance bound from the issue: profiling adds < 5%.
MAX_OVERHEAD = 0.05
#: Headroom asserted in CI: timer jitter on shared runners can exceed
#: the real overhead, so the hard assert allows 2x the bound while the
#: measured ratio is recorded in ``extra_info`` for the calibrated run.
ASSERT_CEILING = 2 * MAX_OVERHEAD


@pytest.fixture(scope="module")
def frozen():
    rng = np.random.default_rng(0)
    totals = rng.lognormal(0.0, 1.0, size=(N_ANTENNAS, N_SERVICES))
    features = rsca(totals)
    labels = AgglomerativeClustering(n_clusters=9,
                                     linkage="ward").fit_predict(features)
    surrogate = RandomForestClassifier(n_estimators=20, max_depth=6,
                                       random_state=0)
    surrogate.fit(features, labels)
    clusters = np.unique(labels)
    centroids = np.vstack(
        [features[labels == c].mean(axis=0) for c in clusters]
    )
    return FrozenProfile(
        features=features,
        labels=labels,
        antenna_ids=np.arange(N_ANTENNAS, dtype=np.int64),
        clusters=clusters,
        centroids=centroids,
        service_names=tuple(f"service_{j}" for j in range(N_SERVICES)),
        surrogate=surrogate,
        service_totals=totals.sum(axis=0),
    )


def _workload_round(service, batches):
    for batch in batches:
        service.classify(batch)


def test_perf_profiled_serve_overhead(benchmark, frozen):
    """Serving under the profiler stays within the overhead budget."""
    rng = np.random.default_rng(1)
    # Unique rows each call so the result cache never hides the work.
    batches = [
        frozen.features[rng.integers(0, N_ANTENNAS, size=BATCH_ROWS)]
        + rng.normal(0.0, 1e-4, size=(BATCH_ROWS, N_SERVICES))
        for _ in range(INNER)
    ]
    service = ProfileService(frozen, max_batch=32, n_workers=2,
                             cache_size=0)
    profiler = ContinuousProfiler(hz=50.0, window_s=30.0,
                                  registry=MetricsRegistry())
    try:
        _workload_round(service, batches)  # warm both paths

        best_bare = float("inf")
        best_prof = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            _workload_round(service, batches)
            best_bare = min(best_bare, time.perf_counter() - start)
            with profiler:
                start = time.perf_counter()
                _workload_round(service, batches)
                best_prof = min(best_prof, time.perf_counter() - start)
        ratio = (best_prof - best_bare) / best_bare

        benchmark.extra_info["bare_ms"] = best_bare * 1e3
        benchmark.extra_info["profiled_ms"] = best_prof * 1e3
        benchmark.extra_info["overhead_ratio"] = ratio
        benchmark.extra_info["bound"] = MAX_OVERHEAD
        benchmark.extra_info["snapshot_passes"] = (
            profiler.stats()["snapshot_passes"]
        )
        with profiler:
            benchmark(lambda: _workload_round(service, batches))

        assert ratio < ASSERT_CEILING, (
            f"profiler overhead {ratio:.1%} exceeds {ASSERT_CEILING:.0%} "
            f"(bound {MAX_OVERHEAD:.0%})"
        )
    finally:
        service.close()


def test_perf_single_snapshot_pass(benchmark, frozen):
    """Cost of one ``sys._current_frames`` fold, the throttle's input."""
    service = ProfileService(frozen, max_batch=32, n_workers=4)
    profiler = ContinuousProfiler(hz=50.0, registry=MetricsRegistry())
    try:
        profiler.sample_once(now=0.0)
        benchmark(lambda: profiler.sample_once(now=0.0))
        stats = profiler.stats()
        benchmark.extra_info["stacks_per_pass"] = (
            stats["stacks"] / max(1, stats["snapshot_passes"])
        )
    finally:
        service.close()
