"""Fig. 1 — normalized traffic vs RCA vs RSCA distributions.

Paper claims: the globally normalized traffic collapses into a spike at
0; RCA is better spread but skewed, with under-utilization wedged in
[0, 1) and an unbounded over-utilization tail (their example max: 75.88);
RSCA is balanced over [-1, 1].
"""

import numpy as np

from repro.core.rca import feature_histograms

from conftest import run_once


def test_fig1_feature_distributions(benchmark, dataset):
    hists = run_once(
        benchmark, lambda: feature_histograms(dataset.totals, bins=40)
    )

    norm_counts, _ = hists["normalized"]
    spike_share = norm_counts[0] / norm_counts.sum()
    assert spike_share > 0.9, "normalized traffic must collapse near zero"

    rca_counts, rca_edges = hists["rca"]
    assert hists["max_rca"] > 10.0, "RCA must exhibit an unbounded tail"
    below_one = rca_counts[rca_edges[1:] <= 1.0].sum()
    assert below_one > 0.3 * rca_counts.sum(), (
        "under-utilization must be wedged into [0, 1)"
    )

    rsca_counts, rsca_edges = hists["rsca"]
    total = rsca_counts.sum()
    negative = rsca_counts[rsca_edges[:-1] < 0].sum() / total
    positive = 1.0 - negative
    assert 0.2 < negative < 0.8, "RSCA must spread over both halves"
    assert 0.2 < positive < 0.8
    # No mass outside [-1, 1] by construction.
    assert rsca_edges[0] >= -1.0 and rsca_edges[-1] <= 1.0

    print("\n[fig1] normalized-traffic spike share: "
          f"{spike_share:.1%} (paper: spike-like at 0)")
    print(f"[fig1] max RCA: {hists['max_rca']:.2f} (paper example: 75.88)")
    print(f"[fig1] RSCA mass below 0: {negative:.1%} (paper: balanced)")
