"""Ablation — SHAP estimators: TreeSHAP vs Kernel SHAP vs exact (Eq. 4).

The paper uses TreeSHAP for its speed on tree ensembles (Section 5.1.1).
This ablation verifies on a reduced problem that all three estimators
agree, and times TreeSHAP's advantage over the model-agnostic Kernel
SHAP.
"""

import time

import numpy as np

from repro.explain.kernel import kernel_shap
from repro.explain.shapley import exact_shapley
from repro.explain.treeshap import TreeExplainer
from repro.ml.forest import RandomForestClassifier

from conftest import run_once

N_FEATURES = 8  # exact enumeration is O(2^M); keep the ablation small


def test_ablation_shap_estimators(benchmark, dataset, profile):
    # Reduced problem: top-8 most-important services, binary target
    # "is the antenna in cluster 3" — small enough for exact Eq. 4.
    features = profile.features
    labels = (profile.labels == 3).astype(int)
    variances = features.var(axis=0)
    top = np.argsort(variances)[::-1][:N_FEATURES]
    x = features[:, top]
    forest = RandomForestClassifier(
        n_estimators=15, max_depth=5, random_state=0
    ).fit(x, labels)

    rng = np.random.default_rng(0)
    background = x[rng.choice(x.shape[0], size=60, replace=False)]
    instance = x[int(np.flatnonzero(labels == 1)[0])]

    def proba_one(rows):
        return forest.predict_proba(rows)[:, 1]

    explainer = TreeExplainer(forest)

    def run_tree():
        return explainer.shap_values(instance[None, :])[0, :, 1]

    tree_phi = run_once(benchmark, run_tree)

    t0 = time.time()
    kernel_phi = kernel_shap(proba_one, instance, background, n_samples=None)
    kernel_time = time.time() - t0
    t0 = time.time()
    exact_phi = exact_shapley(proba_one, instance, background)
    exact_time = time.time() - t0

    # Kernel SHAP with full enumeration equals the exact Eq. 4 values.
    np.testing.assert_allclose(kernel_phi, exact_phi, atol=1e-6)

    # TreeSHAP attributes a slightly different value function
    # (path-dependent expectations vs background marginalization), but
    # the rankings and signs of the dominant features must agree.
    dominant = np.argsort(np.abs(exact_phi))[::-1][:3]
    for j in dominant:
        assert np.sign(tree_phi[j]) == np.sign(exact_phi[j]), (
            f"feature {j}: treeshap {tree_phi[j]:.4f} "
            f"vs exact {exact_phi[j]:.4f}"
        )
    top_exact = set(np.argsort(np.abs(exact_phi))[::-1][:3].tolist())
    top_tree = set(np.argsort(np.abs(tree_phi))[::-1][:3].tolist())
    assert len(top_exact & top_tree) >= 2, (
        f"top features disagree: exact {top_exact} vs tree {top_tree}"
    )

    print(f"\n[ablation/shap] kernel (2^{N_FEATURES} coalitions): "
          f"{kernel_time:.2f}s; exact: {exact_time:.2f}s; treeshap is the "
          "benchmarked target (see timing table)")
    print(f"[ablation/shap] top-3 exact features {sorted(top_exact)}, "
          f"treeshap {sorted(top_tree)}")
