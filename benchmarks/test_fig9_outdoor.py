"""Fig. 9 — cluster distribution of ~20,000 nearby outdoor antennas.

Paper claims: the indoor demand diversity is absent outdoors — almost
70% of outdoor antennas classify into the general-use cluster 1, and the
specialized workplace/stadium/metro/train clusters are nearly empty.
"""

from conftest import run_once


def test_fig9_outdoor_distribution(benchmark, dataset, profile, outdoor):
    _, outdoor_totals = outdoor
    comparison = run_once(
        benchmark,
        lambda: profile.classify_outdoor(outdoor_totals, dataset.totals),
    )

    assert comparison.labels.shape[0] == 20000
    assert comparison.dominant_cluster() == 1
    general = comparison.fraction_of(1)
    assert 0.55 < general < 0.85, (
        f"general-use share {general:.0%} (paper: ~70%)"
    )
    # Specialized clusters nearly absent.
    for cluster in (0, 4, 7, 6, 8, 3):
        fraction = comparison.fraction_of(cluster)
        assert fraction < 0.10, (
            f"specialized cluster {cluster} absorbs {fraction:.0%} outdoors"
        )
    orange_green = comparison.fraction_in([0, 4, 7, 5, 6, 8])
    assert orange_green < 0.25, (
        f"orange+green combined outdoors: {orange_green:.0%}"
    )

    print(f"\n[fig9] general-use cluster 1: {general:.1%} (paper: ~70%)")
    for cluster in sorted(comparison.distribution):
        print(f"[fig9]   cluster {cluster}: "
              f"{comparison.distribution[cluster]:.1%}")
