"""Fig. 2 — Silhouette score and Dunn index vs number of clusters.

Paper claims: both indices show a high value followed by an abrupt drop
at k = 6 and k = 9; the paper selects k = 9.
"""

from repro.core.pipeline import ICNProfiler

from conftest import run_once


def test_fig2_k_selection_scan(benchmark, dataset):
    profiler = ICNProfiler(n_clusters=9)
    result = run_once(
        benchmark,
        lambda: profiler.scan_cluster_counts(dataset, ks=range(2, 16)),
    )

    silhouette_peaks = set(result.local_peaks("silhouette"))
    dunn_peaks = set(result.local_peaks("dunn"))
    # Each candidate k of the paper must show the high-then-drop
    # signature in at least one index.
    assert 6 in silhouette_peaks | dunn_peaks, (
        f"k=6 signature missing: sil peaks {silhouette_peaks}, "
        f"dunn peaks {dunn_peaks}"
    )
    assert 9 in silhouette_peaks | dunn_peaks, (
        f"k=9 signature missing: sil peaks {silhouette_peaks}, "
        f"dunn peaks {dunn_peaks}"
    )
    # Beyond k = 9 the partition quality decays (paper: merging natural
    # clusters is over).
    nine = result.ks.index(9)
    assert result.silhouette[nine] > result.silhouette[-1]

    rows = "\n".join(
        f"[fig2] k={k:<2d} silhouette={s:.4f} dunn={d:.4f}"
        for k, s, d in zip(result.ks, result.silhouette, result.dunn)
    )
    print("\n" + rows)
    print(f"[fig2] silhouette peaks: {sorted(silhouette_peaks)}; "
          f"dunn peaks: {sorted(dunn_peaks)} (paper: 6 and 9)")
