"""Fig. 3 — dendrogram: three groups of three clusters; k = 6 behaviour.

Paper claims: at k = 9, the hierarchy splits into three larger groups —
orange {0, 4, 7}, green {5, 6, 8}, red {1, 2, 3} — each holding three
sub-clusters; cutting at k = 6 consolidates the orange group into one
cluster and merges clusters 6 and 8.
"""

import numpy as np

from repro.core.cluster import AgglomerativeClustering
from repro.core.rca import rsca
from repro.utils.assignment import align_labels

from conftest import run_once


def test_fig3_dendrogram_structure(benchmark, dataset):
    features = rsca(dataset.totals)
    model = run_once(
        benchmark,
        lambda: AgglomerativeClustering(n_clusters=9, linkage="ward").fit(
            features
        ),
    )

    # Align the raw cut to the paper numbering via the latent archetypes.
    mapping = align_labels(model.labels_, dataset.archetypes())

    def aligned_partition(n_groups):
        groups = model.dendrogram_.group_of_clusters(9, n_groups)
        out = {}
        for raw, group in groups.items():
            out.setdefault(group, set()).add(mapping[int(raw)])
        return sorted(sorted(v) for v in out.values())

    three = aligned_partition(3)
    assert three == [[0, 4, 7], [1, 2, 3], [5, 6, 8]], three

    six = aligned_partition(6)
    # Paper's k = 6: orange consolidated, clusters 6 and 8 merged.
    assert [0, 4, 7] in six, six
    assert [6, 8] in six, six
    assert [1] in six and [2] in six and [3] in six and [5] in six, six

    # The orange group is the most distinct: its merge into the rest
    # happens at the greatest height (the final merge joins orange last or
    # the root separates orange from green+red).
    heights = model.linkage_matrix_[:, 2]
    assert np.all(np.diff(heights) >= -1e-9), "merge heights must be monotone"

    thresholds = {
        k: model.dendrogram_.threshold_for(k) for k in (6, 9)
    }
    assert thresholds[6] > thresholds[9]
    print(f"\n[fig3] groups at k=3: {three} (paper: orange/red/green)")
    print(f"[fig3] partition at k=6: {six} "
          "(paper: orange consolidated, 6+8 merged)")
    print(f"[fig3] cut thresholds: k=6 at {thresholds[6]:.2f}, "
          f"k=9 at {thresholds[9]:.2f}")
