"""Extension — proactive management: cluster-aware traffic forecasting.

The paper's motivation (Section 1: "understanding and forecasting traffic
demands enables the proactive configuration of the wireless network") and
its temporal findings imply a two-sided result: the weekly regimes of
Fig. 10 make every cluster's *routine* demand forecastable one week out,
while *unscheduled* events — the paper's NBA Paris Game, held on a
Thursday outside the normal fixture calendar — are exactly what a purely
statistical forecaster misses.  Proactive venue management therefore
needs event calendars, not just history (the Section 7 argument).
"""

import numpy as np

from repro.datagen.calendar import STRIKE_DAY
from repro.datagen.environments import EnvironmentType
from repro.forecast import (
    WEEK_HOURS,
    WeeklyProfile,
    backtest_all_clusters,
    best_model_per_cluster,
)

from conftest import run_once


def test_extension_cluster_forecasting(benchmark, dataset, profile):
    results = run_once(
        benchmark,
        lambda: backtest_all_clusters(
            dataset, profile.labels, horizon=WEEK_HOURS, max_antennas=40
        ),
    )
    best = best_model_per_cluster(results)

    # Routine demand is forecastable everywhere: the weekly regimes of
    # Fig. 10 (commutes, office hours, retail days, league fixtures) are
    # all weekly-periodic.
    for cluster, score in best.items():
        assert score.nmae < 0.45, (
            f"cluster {cluster} nmae {score.nmae:.2f}"
        )

    # The profile-based family should win on most clusters (the weekly
    # shape is the signal; plain repetition carries last week's noise).
    profile_wins = sum(
        1 for score in best.values()
        if score.model in ("weekly_profile", "holt_winters")
    )
    assert profile_wins >= 5, f"profile family won only {profile_wins}/9"

    for cluster in sorted(best):
        score = best[cluster]
        print(f"\n[ext/forecast] cluster {cluster}: best {score.model} "
              f"nmae {score.nmae:.3f}")


def test_extension_unscheduled_event_is_missed(benchmark, dataset):
    """A statistical forecaster misses the NBA game (a Thursday event).

    The held-out final week (18-24 Jan) contains the cross-Atlantic NBA
    game of 19 Jan — played outside the Wed/Sat/Sun fixture calendar the
    weekly profile has learned.  The largest under-prediction at the
    hosting arena must land on the NBA evening.
    """
    nba_site = next(
        s.site_id for s in dataset.sites
        if s.env_type == EnvironmentType.STADIUM and s.is_paris
    )
    members = [a.antenna_id for a in dataset.antennas
               if a.site_id == nba_site]
    series = run_once(
        benchmark,
        lambda: dataset.hourly_total(antenna_ids=members).mean(axis=0),
    )
    train, test = series[:-WEEK_HOURS], series[-WEEK_HOURS:]
    forecast = WeeklyProfile().fit(train).forecast(WEEK_HOURS)
    surprise = test - forecast
    test_hours = dataset.calendar.hours[-WEEK_HOURS:]
    worst_hour = test_hours[int(np.argmax(surprise))]
    assert worst_hour.astype("datetime64[D]") == STRIKE_DAY, (
        f"largest under-prediction at {worst_hour}, expected the 19 Jan "
        "NBA evening"
    )
    hour_of_day = int(
        (worst_hour - worst_hour.astype("datetime64[D]"))
        / np.timedelta64(1, "h")
    )
    assert 18 <= hour_of_day <= 23
    print(f"\n[ext/forecast] NBA surprise: largest miss at {worst_hour} "
          f"({surprise.max():.1f} MB above forecast)")

    # The Section 7 remedy: give the forecaster the venue's event
    # calendar and the miss largely disappears.
    from repro.forecast import EventAwareProfile, event_mask_for_site

    mask = event_mask_for_site(dataset, nba_site)
    aware = EventAwareProfile().fit(train, mask[:-WEEK_HOURS])
    aware_forecast = aware.forecast(WEEK_HOURS, mask[-WEEK_HOURS:])
    nba_hours = (
        dataset.calendar.dates()[-WEEK_HOURS:] == STRIKE_DAY
    ) & mask[-WEEK_HOURS:]
    blind_miss = np.abs(test[nba_hours] - forecast[nba_hours]).mean()
    aware_miss = np.abs(test[nba_hours] - aware_forecast[nba_hours]).mean()
    assert aware_miss < 0.5 * blind_miss, (
        f"event-aware miss {aware_miss:.0f} vs blind {blind_miss:.0f}"
    )
    print(f"[ext/forecast] event-aware fix: NBA-hour MAE {aware_miss:.0f} MB "
          f"vs blind {blind_miss:.0f} MB")
