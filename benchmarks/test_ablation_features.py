"""Ablation — clustering feature choice: RSCA vs RCA vs normalized traffic.

The paper's Section 4.1 argues RSCA is the right feature: raw normalized
traffic groups antennas by popularity and RCA's unbounded tail drags
centroids.  This ablation clusters on all three and compares recovery of
the latent archetypes (and the environment purity of the clusters).
"""

import numpy as np

from repro.core.cluster import AgglomerativeClustering
from repro.core.rca import normalized_traffic, rca, rsca
from repro.ml.metrics import accuracy
from repro.utils.assignment import align_labels

from conftest import run_once


def archetype_agreement(features, reference):
    labels = AgglomerativeClustering(n_clusters=9).fit_predict(features)
    mapping = align_labels(labels, reference)
    aligned = np.array([mapping[l] for l in labels])
    return accuracy(aligned, reference)


def test_ablation_clustering_features(benchmark, dataset):
    reference = dataset.archetypes()

    def run_all():
        return {
            "rsca": archetype_agreement(rsca(dataset.totals), reference),
            "rca": archetype_agreement(rca(dataset.totals), reference),
            "normalized": archetype_agreement(
                normalized_traffic(dataset.totals), reference
            ),
        }

    agreements = run_once(benchmark, run_all)

    # RSCA must dominate both alternatives (the paper's core argument).
    assert agreements["rsca"] > 0.95
    assert agreements["rsca"] > agreements["rca"] + 0.02
    assert agreements["rsca"] > agreements["normalized"] + 0.2
    # Normalized traffic is near-useless: the spike at 0 hides structure.
    assert agreements["normalized"] < 0.7

    print("\n[ablation/features] archetype agreement: "
          + ", ".join(f"{k}={v:.3f}" for k, v in agreements.items()))
