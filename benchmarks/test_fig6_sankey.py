"""Fig. 6 — Sankey diagram: how clusters flow into environment types.

Paper claims: metro and train stations are monopolized by the orange
group; the preponderance of stadiums goes to green clusters; the dominant
flux into workspaces originates from cluster 3; clusters 1 and 2 populate
the remaining environments.
"""

import numpy as np

from repro.analysis.environment import contingency
from repro.datagen.environments import EnvironmentType

from conftest import run_once


def test_fig6_sankey_flows(benchmark, dataset, profile):
    table = run_once(
        benchmark,
        lambda: contingency(profile.labels, dataset.environment_types()),
    )
    flows = table.sankey_flows()
    assert sum(count for _, _, count in flows) == dataset.n_antennas

    def flow_share(envs, clusters):
        selected = sum(
            count for cluster, env, count in flows
            if env in envs and cluster in clusters
        )
        total = sum(count for _, env, count in flows if env in envs)
        return selected / total

    transit = {EnvironmentType.METRO, EnvironmentType.TRAIN}
    assert flow_share(transit, {0, 4, 7}) > 0.99, (
        "metro/train must be monopolized by the orange group"
    )
    assert flow_share({EnvironmentType.STADIUM}, {5, 6, 8}) > 0.7, (
        "most stadium antennas must flow to green clusters"
    )
    workspace_flows = {
        cluster: count for cluster, env, count in flows
        if env == EnvironmentType.WORKSPACE
    }
    assert max(workspace_flows, key=workspace_flows.get) == 3, (
        "the dominant flux into workspaces must originate from cluster 3"
    )
    remaining = {EnvironmentType.HOTEL, EnvironmentType.HOSPITAL,
                 EnvironmentType.PUBLIC, EnvironmentType.AIRPORT,
                 EnvironmentType.TUNNEL, EnvironmentType.COMMERCIAL}
    assert flow_share(remaining, {1, 2}) > 0.75, (
        "clusters 1 and 2 must populate the remaining environments"
    )

    # Quantify the association strength behind the Sankey picture.
    from repro.analysis.association import association_test

    envs = np.array([e.value for e in dataset.environment_types()])
    association = association_test(
        profile.labels, envs, n_permutations=100, random_state=0
    )
    # Cramér's V ~0.6 over an 9 x 11 table is a very strong association
    # (V is dimension-penalized; 1.0 would need a bijection).
    assert association.cramers_v > 0.5, (
        f"cluster-environment Cramér's V {association.cramers_v:.2f}"
    )
    assert association.p_value < 0.02

    print("\n[fig6] top flows:")
    for cluster, env, count in flows[:10]:
        print(f"[fig6]   cluster {cluster} -> {env.value}: {count}")
    print(f"[fig6] association: Cramér's V {association.cramers_v:.2f}, "
          f"permutation p {association.p_value:.3f}")
