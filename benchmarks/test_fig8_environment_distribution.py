"""Fig. 8 — how each environment type distributes over clusters.

Paper claims: (a) almost all airport and tunnel antennas fall in cluster
1, and cluster 2 hosts ~50% of commercial centres; (b) cluster 2 holds
most hotels and public buildings and almost all hospitals; (c) >50% of
expo centres belong to cluster 3, stadiums split across the green group,
and the dominant workspace share goes to cluster 3.
"""

from repro.analysis.environment import contingency
from repro.datagen.environments import EnvironmentType

from conftest import run_once


def test_fig8_environment_distribution(benchmark, dataset, profile):
    table = run_once(
        benchmark,
        lambda: contingency(profile.labels, dataset.environment_types()),
    )

    # (a) airports, tunnels, commercial centres.
    assert table.distribution_of(EnvironmentType.AIRPORT)[1] > 0.9, (
        "almost all airports must be in cluster 1"
    )
    assert table.distribution_of(EnvironmentType.TUNNEL)[1] > 0.9, (
        "almost all tunnels must be in cluster 1"
    )
    commercial = table.distribution_of(EnvironmentType.COMMERCIAL)
    assert 0.35 < commercial[2] < 0.65, (
        f"cluster 2 hosts {commercial[2]:.0%} of commercial centres "
        "(paper: ~50%)"
    )

    # (b) hotels, hospitals, public buildings.
    assert table.distribution_of(EnvironmentType.HOSPITAL)[2] > 0.85, (
        "almost all hospitals must be in cluster 2"
    )
    hotels = table.distribution_of(EnvironmentType.HOTEL)
    assert max(hotels, key=hotels.get) == 2, "most hotels in cluster 2"
    public = table.distribution_of(EnvironmentType.PUBLIC)
    assert max(public, key=public.get) == 2, "most public buildings in 2"

    # (c) stadiums, expo centres, workspaces.
    expo = table.distribution_of(EnvironmentType.EXPO)
    assert expo[3] > 0.5, f"expo share in cluster 3 is {expo[3]:.0%}"
    stadium = table.distribution_of(EnvironmentType.STADIUM)
    green_share = stadium[5] + stadium[6] + stadium[8]
    assert green_share > 0.7, (
        f"stadium mass in the green group is {green_share:.0%}"
    )
    workspace = table.distribution_of(EnvironmentType.WORKSPACE)
    assert max(workspace, key=workspace.get) == 3

    for env in EnvironmentType:
        dist = table.distribution_of(env)
        top = sorted(dist.items(), key=lambda kv: kv[1], reverse=True)[:3]
        listing = ", ".join(f"c{c} {share:.0%}" for c, share in top
                            if share > 0)
        print(f"\n[fig8] {env.value}: {listing}")
