"""Performance benchmarks of the core primitives (multi-round timings).

Unlike the figure-regeneration benches (single measured round over the
full deployment), these time the hot primitives statistically on reduced
inputs, so regressions in the from-scratch implementations show up in the
pytest-benchmark table.
"""

import numpy as np
import pytest

from repro.core.cluster import linkage, pairwise_distances
from repro.core.rca import rsca
from repro.core.validation import silhouette_score
from repro.explain.treeshap import TreeExplainer
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture(scope="module")
def medium_features():
    rng = np.random.default_rng(0)
    totals = rng.lognormal(3.0, 1.0, size=(800, 73))
    return rsca(totals)


@pytest.fixture(scope="module")
def medium_labels(medium_features):
    rng = np.random.default_rng(1)
    return rng.integers(0, 9, size=medium_features.shape[0])


def test_perf_rsca(benchmark):
    rng = np.random.default_rng(0)
    totals = rng.lognormal(3.0, 1.0, size=(4762, 73))
    result = benchmark(rsca, totals)
    assert result.shape == (4762, 73)


def test_perf_pairwise_distances(benchmark, medium_features):
    result = benchmark(pairwise_distances, medium_features)
    assert result.shape == (800, 800)


def test_perf_ward_linkage(benchmark, medium_features):
    result = benchmark(linkage, medium_features, "ward")
    assert result.shape == (799, 4)


def test_perf_silhouette(benchmark, medium_features, medium_labels):
    value = benchmark(silhouette_score, medium_features, medium_labels)
    assert -1.0 <= value <= 1.0


def test_perf_tree_fit(benchmark, medium_features, medium_labels):
    def fit():
        return DecisionTreeClassifier(max_depth=6, max_features="sqrt",
                                      random_state=0).fit(
            medium_features, medium_labels
        )

    tree = benchmark(fit)
    assert tree.tree_ is not None


def test_perf_forest_predict(benchmark, medium_features, medium_labels):
    forest = RandomForestClassifier(n_estimators=20, max_depth=6,
                                    random_state=0).fit(
        medium_features, medium_labels
    )
    proba = benchmark(forest.predict_proba, medium_features[:200])
    assert proba.shape[0] == 200


def test_perf_treeshap_per_sample(benchmark, medium_features, medium_labels):
    forest = RandomForestClassifier(n_estimators=10, max_depth=6,
                                    random_state=0).fit(
        medium_features, medium_labels
    )
    explainer = TreeExplainer(forest)
    row = medium_features[:1]
    values = benchmark(explainer.shap_values, row)
    assert values.shape[0] == 1


def test_perf_kmeans(benchmark, medium_features):
    from repro.core.compare import KMeans

    def fit():
        return KMeans(n_clusters=9, n_init=3, random_state=0).fit(
            medium_features
        )

    model = benchmark(fit)
    assert model.labels_ is not None


def test_perf_spectral(benchmark, medium_features):
    from repro.core.spectral import SpectralClustering

    def fit():
        return SpectralClustering(n_clusters=9, random_state=0).fit(
            medium_features[:400]
        )

    model = benchmark(fit)
    assert model.labels_ is not None


def test_perf_boosting_fit(benchmark, medium_features, medium_labels):
    from repro.ml.boosting import GradientBoostingClassifier

    def fit():
        return GradientBoostingClassifier(
            n_estimators=5, max_depth=3, random_state=0
        ).fit(medium_features[:300], medium_labels[:300])

    model = benchmark(fit)
    assert model.classes_ is not None


def test_perf_kernel_shap(benchmark):
    from repro.explain.kernel import kernel_shap

    rng = np.random.default_rng(0)
    background = rng.normal(size=(40, 8))
    x = rng.normal(size=8)
    model = lambda rows: np.tanh(rows).sum(axis=1)
    phi = benchmark(kernel_shap, model, x, background, 200)
    assert phi.shape == (8,)
