"""Fig. 7 — indoor environment composition of each cluster.

Paper claims: (a) the orange clusters 0/4/7 comprise solely metro and
train stations, with >92% of clusters 0/4 antennas in Paris and cluster 7
consisting solely of non-capital metro antennas; (b) stadiums dominate
clusters 6 and 8 (>75%) while cluster 5 is a ~35% stadium mix with expo
centres/offices/commercial; (c) >70% of cluster 3 is workplaces.
"""

from repro.analysis.environment import contingency, paris_share
from repro.datagen.environments import EnvironmentType

from conftest import run_once


def test_fig7_cluster_composition(benchmark, dataset, profile):
    table = run_once(
        benchmark,
        lambda: contingency(profile.labels, dataset.environment_types()),
    )

    # (a) orange group: transit only, Paris split per the paper.
    transit = {EnvironmentType.METRO, EnvironmentType.TRAIN}
    for cluster in (0, 4, 7):
        composition = table.composition_of(cluster)
        share = sum(composition[env] for env in transit)
        assert share > 0.99, f"cluster {cluster} transit share {share:.2f}"
    shares = paris_share(profile.labels, dataset.paris_mask())
    assert shares[0] > 0.9, f"cluster 0 Paris share {shares[0]:.2f}"
    assert shares[4] > 0.9, f"cluster 4 Paris share {shares[4]:.2f}"
    assert shares[7] < 0.02, "cluster 7 must be non-capital metros"
    comp7 = table.composition_of(7)
    assert comp7[EnvironmentType.METRO] > 0.95

    # (b) green group.
    for cluster in (6, 8):
        composition = table.composition_of(cluster)
        assert composition[EnvironmentType.STADIUM] > 0.75, (
            f"cluster {cluster} stadium share "
            f"{composition[EnvironmentType.STADIUM]:.2f}"
        )
    comp5 = table.composition_of(5)
    assert 0.2 < comp5[EnvironmentType.STADIUM] < 0.55, (
        f"cluster 5 stadium share {comp5[EnvironmentType.STADIUM]:.2f} "
        "(paper: ~35%)"
    )
    diverse5 = (
        comp5[EnvironmentType.EXPO]
        + comp5[EnvironmentType.WORKSPACE]
        + comp5[EnvironmentType.COMMERCIAL]
    )
    assert diverse5 > 0.3, "cluster 5 must mix expo/offices/commercial"

    # (c) red group's office cluster.
    comp3 = table.composition_of(3)
    assert comp3[EnvironmentType.WORKSPACE] > 0.7, (
        f"cluster 3 workspace share {comp3[EnvironmentType.WORKSPACE]:.2f}"
    )

    for cluster in sorted(profile.cluster_sizes()):
        composition = table.composition_of(cluster)
        top = sorted(composition.items(), key=lambda kv: kv[1],
                     reverse=True)[:3]
        listing = ", ".join(f"{env.value} {share:.0%}" for env, share in top
                            if share > 0)
        print(f"\n[fig7] cluster {cluster}: {listing}")
