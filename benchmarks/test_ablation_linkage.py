"""Ablation — linkage criterion: Ward vs average/complete/single.

The paper adopts Ward's minimum-variance criterion (Section 4.2.1).
This ablation re-clusters the RSCA features under the other classical
criteria and compares archetype recovery: Ward must be at least as good
as the alternatives, and single linkage (chaining) must fail.
"""

import numpy as np

from repro.core.cluster import AgglomerativeClustering
from repro.core.rca import rsca
from repro.ml.metrics import accuracy
from repro.utils.assignment import align_labels

from conftest import run_once


def test_ablation_linkage_criteria(benchmark, dataset):
    features = rsca(dataset.totals)
    reference = dataset.archetypes()

    def agreement(method):
        labels = AgglomerativeClustering(
            n_clusters=9, linkage=method
        ).fit_predict(features)
        mapping = align_labels(labels, reference)
        return accuracy(np.array([mapping[l] for l in labels]), reference)

    def run_all():
        return {m: agreement(m) for m in
                ("ward", "average", "complete", "single")}

    agreements = run_once(benchmark, run_all)

    assert agreements["ward"] > 0.95
    for method in ("average", "complete", "single"):
        assert agreements["ward"] >= agreements[method] - 1e-9, (
            f"{method} beat ward: {agreements}"
        )
    # Single linkage chains through the noise and falls clearly behind
    # the variance-minimizing criterion.
    assert agreements["single"] < agreements["ward"] - 0.15

    print("\n[ablation/linkage] archetype agreement: "
          + ", ".join(f"{k}={v:.3f}" for k, v in agreements.items()))
