"""Fig. 5 — SHAP beeswarm panels: per-cluster service importance.

Paper claims (Section 5.1.2), per dendrogram group:

* orange (0, 4, 7): music services over-utilized everywhere; navigation
  (Mappy, transportation websites) over in 0/4 but *under* in 7;
  entertainment scarce in 4.
* green (5, 6, 8): broad under-utilization in 5; Snapchat/Twitter/sports
  over in 6 and 8; Giphy/WhatsApp/Canal+ present in 8 but absent in 6.
* red (1, 2, 3): music/navigation under-used; 3 is business (Teams,
  LinkedIn, email); 1 has streaming (Netflix/Disney+/Prime) and Waze;
  2 has Google Play Store and shopping.
"""

import numpy as np
import pytest

from conftest import run_once

TOP = 25  # the paper shows the 25 most influential services per panel


def top_services(explanation, direction=None, k=TOP):
    chosen = explanation.top(k)
    if direction is not None:
        chosen = [si for si in chosen if si.direction == direction]
    return {si.service for si in chosen}


def test_fig5_shap_explanations(benchmark, profile):
    explanations = run_once(
        benchmark, lambda: profile.explain(samples_per_cluster=25)
    )
    assert sorted(explanations) == list(range(9))

    # --- orange group ------------------------------------------------
    for cluster in (0, 4, 7):
        over = top_services(explanations[cluster], "over")
        assert over & {"Spotify", "Deezer", "Apple Music", "SoundCloud",
                       "YouTube Music"}, (
            f"cluster {cluster} must over-use music, got {sorted(over)}"
        )
    for cluster in (0, 4):
        over = top_services(explanations[cluster], "over")
        assert over & {"Mappy", "Transportation Websites", "Google Maps"}, (
            f"cluster {cluster} must over-use navigation"
        )
    under7 = top_services(explanations[7], "under")
    assert under7 & {"Mappy", "Transportation Websites"}, (
        "cluster 7 is distinguished by under-use of Mappy/transport sites"
    )
    under4 = top_services(explanations[4], "under")
    assert under4 & {"Yahoo", "Entertainment Websites", "Shopping Websites",
                     "Sports Websites"}, (
        "cluster 4 under-uses entertainment/shopping/sports services"
    )

    # --- green group -------------------------------------------------
    for cluster in (6, 8):
        over = top_services(explanations[cluster], "over")
        assert over & {"Snapchat", "Twitter", "Sports Websites", "L'Equipe",
                       "OneFootball"}, (
            f"cluster {cluster} must over-use social sharing / sports"
        )
    eight_over = top_services(explanations[8], "over")
    six_over = top_services(explanations[6], "over")
    distinctive_eight = {"Giphy", "WhatsApp", "Canal+"}
    assert eight_over & distinctive_eight, (
        "cluster 8 must feature Giphy/WhatsApp/Canal+"
    )
    assert not (six_over & distinctive_eight), (
        "Giphy/WhatsApp/Canal+ must be absent from cluster 6's over-use"
    )
    five_under = top_services(explanations[5], "under")
    assert len(five_under) >= 8, (
        "cluster 5 is characterized by broad under-utilization"
    )

    # --- red group ---------------------------------------------------
    over3 = top_services(explanations[3], "over")
    assert over3 & {"Microsoft Teams", "LinkedIn"}, (
        "cluster 3 must feature business services"
    )
    assert over3 & {"Gmail", "Outlook", "Orange Mail", "Yahoo Mail"}, (
        "cluster 3 must feature emailing services"
    )
    over1 = top_services(explanations[1], "over")
    assert over1 & {"Netflix", "Disney+", "Amazon Prime Video"}, (
        "cluster 1 must feature streaming services"
    )
    assert "Waze" in over1, "cluster 1 must feature Waze"
    over2 = top_services(explanations[2], "over")
    assert over2 & {"Google Play Store", "Shopping Websites"}, (
        "cluster 2 must feature digital distribution / shopping"
    )
    for cluster in (1, 2, 3):
        under = top_services(explanations[cluster], "under")
        assert under & {"Spotify", "SoundCloud", "Deezer", "Apple Music",
                        "YouTube Music", "Mappy", "Transportation Websites"}, (
            f"red cluster {cluster} must under-use music/navigation"
        )

    for cluster in sorted(explanations):
        names = [si.service for si in explanations[cluster].top(5)]
        print(f"\n[fig5] cluster {cluster} top-5: {', '.join(names)}")
