"""Table 1 — indoor environment types recovered from antenna names.

Paper claims: keyword extraction over BS names identifies eleven indoor
environment categories with the N_env counts of Table 1 (metro 1794,
train 434, airport 187, workspace 774, commercial 469, stadium 451,
expo 230, hotel 28, hospital 53, tunnel 220, public 122; total 4,762).
"""

from repro.analysis.environment import environment_table
from repro.datagen.environments import TABLE1_COUNTS

from conftest import run_once


def test_table1_environment_counts(benchmark, dataset):
    table = run_once(
        benchmark, lambda: environment_table(dataset.antenna_names())
    )
    for env, expected in TABLE1_COUNTS.items():
        assert table[env] == expected, (
            f"{env.value}: extracted {table[env]}, Table 1 says {expected}"
        )
    assert sum(table.values()) == 4762
    print("\n[table1] "
          + ", ".join(f"{env.value}={count}" for env, count in table.items()))
