"""Ablation — robustness of the pipeline to demand heterogeneity.

The paper's clusters emerge from noisy production measurements.  This
ablation regenerates the deployment at increasing per-antenna service-mix
noise and measures how archetype recovery degrades: the structure should
survive realistic noise and fail gracefully, not cliff, beyond it —
evidence that the reproduction's headline results are not an artefact of
an unrealistically clean generator.
"""

import numpy as np

from repro.core.cluster import AgglomerativeClustering
from repro.core.compare import adjusted_rand_index
from repro.core.rca import rsca
from repro.datagen.dataset import generate_dataset
from repro.datagen.environments import DEFAULT_SPECS, EnvironmentSpec

from conftest import run_once

#: Reduced deployment for the sweep (4 noise levels x full clustering).
SWEEP_SCALE = 0.25


def sweep_specs():
    return tuple(
        EnvironmentSpec(
            env_type=s.env_type,
            count=max(8, int(round(s.count * SWEEP_SCALE))),
            paris_fraction=s.paris_fraction,
            antennas_per_site=s.antennas_per_site,
            volume_scale=s.volume_scale,
            surrounding_weights=s.surrounding_weights,
        )
        for s in DEFAULT_SPECS
    )


def recovery_at(noise_sigma: float) -> float:
    dataset = generate_dataset(
        master_seed=5, specs=sweep_specs(), share_noise_sigma=noise_sigma
    )
    features = rsca(dataset.totals)
    labels = AgglomerativeClustering(n_clusters=9).fit_predict(features)
    return adjusted_rand_index(labels, dataset.archetypes())


def test_ablation_noise_robustness(benchmark):
    levels = (0.2, 0.35, 0.6, 1.0)

    def sweep():
        return {sigma: recovery_at(sigma) for sigma in levels}

    recovery = run_once(benchmark, sweep)

    # At the default noise (0.35) recovery is essentially perfect.
    assert recovery[0.35] > 0.95
    # Recovery decays monotonically (graceful, no cliff at default).
    values = [recovery[sigma] for sigma in levels]
    assert all(a >= b - 0.05 for a, b in zip(values, values[1:])), values
    # Even at ~3x the default noise some structure survives.
    assert recovery[1.0] > 0.3

    print("\n[ablation/noise] ARI vs archetypes by share-noise sigma: "
          + ", ".join(f"{s}: {r:.3f}" for s, r in recovery.items()))
