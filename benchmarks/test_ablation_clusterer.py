"""Ablation — clustering algorithm: agglomerative/Ward vs k-means.

The paper picks agglomerative clustering "due to its comprehensibility"
(the dendrogram gives the group structure of Fig. 3).  This ablation
checks the cost of that choice: k-means on the same RSCA features should
recover the same partition (so the paper's findings are not an artefact
of the algorithm), while only the hierarchy yields the 3-group view.
"""

import numpy as np

from repro.core.cluster import AgglomerativeClustering
from repro.core.compare import KMeans, adjusted_rand_index
from repro.core.rca import rsca

from conftest import run_once


def test_ablation_clustering_algorithm(benchmark, dataset):
    features = rsca(dataset.totals)
    reference = dataset.archetypes()

    kmeans_labels = run_once(
        benchmark,
        lambda: KMeans(n_clusters=9, n_init=5, random_state=0).fit_predict(
            features
        ),
    )
    ward_labels = AgglomerativeClustering(n_clusters=9).fit_predict(features)

    # Spectral clustering on a subsample (its dense eigendecomposition is
    # O(N^3); 1,500 antennas suffice for the agreement check).
    from repro.core.spectral import SpectralClustering

    rng = np.random.default_rng(0)
    subsample = rng.choice(features.shape[0], size=1500, replace=False)
    spectral_labels = SpectralClustering(
        n_clusters=9, random_state=0
    ).fit_predict(features[subsample])

    ari_kmeans = adjusted_rand_index(kmeans_labels, reference)
    ari_ward = adjusted_rand_index(ward_labels, reference)
    ari_cross = adjusted_rand_index(kmeans_labels, ward_labels)
    ari_spectral = adjusted_rand_index(spectral_labels, reference[subsample])

    # All three algorithm families recover the latent structure.
    assert ari_ward > 0.95
    assert ari_kmeans > 0.9
    assert ari_cross > 0.9
    assert ari_spectral > 0.8

    print(f"\n[ablation/clusterer] ARI vs archetypes: ward {ari_ward:.3f}, "
          f"kmeans {ari_kmeans:.3f}, spectral {ari_spectral:.3f} "
          f"(1.5k subsample); ward-vs-kmeans {ari_cross:.3f}")
    print("[ablation/clusterer] conclusion: the partition is algorithm-"
          "robust; the dendrogram (Fig. 3 groups) is what Ward adds")


def test_ablation_surrogate_model(benchmark, profile):
    """Surrogate choice: random forest vs gradient boosting (paper cites
    both as TreeSHAP-compatible)."""
    from repro.ml.boosting import GradientBoostingClassifier

    x, y = profile.features, profile.labels

    booster = run_once(
        benchmark,
        lambda: GradientBoostingClassifier(
            n_estimators=20, max_depth=3, random_state=0
        ).fit(x, y),
    )
    boost_accuracy = booster.score(x, y)
    forest_accuracy = profile.surrogate_accuracy
    assert boost_accuracy > 0.9
    assert forest_accuracy > 0.98

    print(f"\n[ablation/surrogate] forest accuracy {forest_accuracy:.3f}, "
          f"boosting accuracy {boost_accuracy:.3f}")
