"""Extension — stability of the demand profiles.

The paper measures one two-month window and recommends planning actions
on the resulting profiles; that only makes sense if the profiles are a
persistent property of the deployment.  Two checks at paper scale:

* *temporal*: clustering each month independently yields (nearly) the
  same partition;
* *bootstrap*: subsample-and-recluster keeps co-clustered antennas
  together.
"""

import numpy as np

from repro.analysis.stability import bootstrap_stability, temporal_stability

from conftest import run_once


def test_extension_profile_stability(benchmark, dataset, profile):
    def run_both():
        temporal, _ = temporal_stability(dataset, n_windows=2, n_clusters=9)
        bootstrap = bootstrap_stability(
            profile.features, profile.labels,
            n_replicates=5, sample_fraction=0.7, random_state=0,
        )
        return temporal, bootstrap

    temporal, bootstrap = run_once(benchmark, run_both)

    # Month-over-month: the partitions of the two halves agree.
    assert temporal[0, 1] > 0.9, f"temporal ARI {temporal[0, 1]:.3f}"

    # Bootstrap: replicates agree with the reference partition, and every
    # cluster's members persist together.
    assert bootstrap.mean_ari > 0.9, f"bootstrap ARI {bootstrap.mean_ari:.3f}"
    weakest = bootstrap.least_stable_cluster()
    assert bootstrap.per_cluster_stability[weakest] > 0.7, (
        f"cluster {weakest} stability "
        f"{bootstrap.per_cluster_stability[weakest]:.2f}"
    )

    print(f"\n[ext/stability] month-over-month ARI {temporal[0, 1]:.3f}")
    print(f"[ext/stability] bootstrap mean ARI {bootstrap.mean_ari:.3f}; "
          f"weakest cluster {weakest} persistence "
          f"{bootstrap.per_cluster_stability[weakest]:.2f}")
