"""Performance benchmarks of the online ingestion subsystem.

Times the streaming hot paths statistically (multi-round, like
``test_perf_primitives.py``): accumulator ingestion throughput in
antenna-hours/sec, per-batch classification latency of the
nearest-centroid + surrogate-forest vote, and checkpoint round trips.
"""

import numpy as np
import pytest

from repro.core.cluster import AgglomerativeClustering
from repro.core.rca import rsca
from repro.ml.forest import RandomForestClassifier
from repro.stream import (
    FrozenProfile,
    HourlyBatch,
    IncrementalRSCA,
    StreamingProfiler,
    load_state,
    save_state,
)

N_ANTENNAS = 800
N_SERVICES = 73
N_HOURS = 24

SERVICES = tuple(f"service_{j}" for j in range(N_SERVICES))


@pytest.fixture(scope="module")
def hourly_batches():
    """One synthetic day of batches over the full antenna population."""
    rng = np.random.default_rng(0)
    hour0 = np.datetime64("2023-01-09T00", "h")
    ids = np.arange(N_ANTENNAS)
    return [
        HourlyBatch(
            hour=hour0 + np.timedelta64(t, "h"),
            antenna_ids=ids,
            traffic=rng.lognormal(0.0, 1.0, size=(N_ANTENNAS, N_SERVICES)),
            service_names=SERVICES,
        )
        for t in range(N_HOURS)
    ]


@pytest.fixture(scope="module")
def frozen(hourly_batches):
    """Frozen reference fitted on the accumulated day of traffic."""
    totals = np.sum([b.traffic for b in hourly_batches], axis=0)
    features = rsca(totals)
    labels = AgglomerativeClustering(n_clusters=9,
                                     linkage="ward").fit_predict(features)
    surrogate = RandomForestClassifier(n_estimators=20, max_depth=6,
                                       random_state=0)
    surrogate.fit(features, labels)
    clusters = np.unique(labels)
    centroids = np.vstack(
        [features[labels == c].mean(axis=0) for c in clusters]
    )
    return FrozenProfile(
        features=features,
        labels=labels,
        antenna_ids=np.arange(N_ANTENNAS, dtype=np.int64),
        clusters=clusters,
        centroids=centroids,
        service_names=SERVICES,
        surrogate=surrogate,
    )


def test_perf_ingest_throughput(benchmark, hourly_batches):
    """Raw accumulator ingestion: antenna-hours folded per second."""

    def ingest_day():
        accumulator = IncrementalRSCA(SERVICES)
        for batch in hourly_batches:
            accumulator.update(batch)
        return accumulator

    accumulator = benchmark(ingest_day)
    assert accumulator.hours_seen == N_HOURS
    rows = N_ANTENNAS * N_HOURS
    benchmark.extra_info["antenna_hours_per_sec"] = (
        rows / benchmark.stats.stats.mean
    )


def test_perf_profiler_ingest(benchmark, hourly_batches, frozen):
    """Full profiler ingestion without per-batch classification."""

    def ingest_day():
        streamer = StreamingProfiler(frozen, window_hours=N_HOURS,
                                     classify_every=0)
        for batch in hourly_batches:
            streamer.ingest(batch)
        return streamer

    streamer = benchmark(ingest_day)
    assert streamer.metrics.count("batches_ingested") == N_HOURS
    benchmark.extra_info["antenna_hours_per_sec"] = (
        N_ANTENNAS * N_HOURS / benchmark.stats.stats.mean
    )


def test_perf_classification_latency(benchmark, hourly_batches, frozen):
    """Per-batch classification pass over every antenna seen so far."""
    streamer = StreamingProfiler(frozen, window_hours=N_HOURS,
                                 classify_every=0)
    for batch in hourly_batches:
        streamer.ingest(batch)

    ids, labels = benchmark(streamer.classify_current)
    assert ids.size == N_ANTENNAS
    assert labels.size == N_ANTENNAS


def test_perf_vote(benchmark, frozen):
    """The nearest-centroid + forest vote on a fixed feature block."""
    labels = benchmark(frozen.vote, frozen.features[:200])
    assert labels.shape == (200,)


def test_perf_checkpoint_roundtrip(benchmark, hourly_batches, tmp_path):
    """Serialize + reload the accumulated day of state."""
    accumulator = IncrementalRSCA(SERVICES)
    for batch in hourly_batches:
        accumulator.update(batch)
    path = tmp_path / "checkpoint.npz"

    def roundtrip():
        save_state(path, accumulator.state_dict())
        return IncrementalRSCA.from_state(load_state(path))

    restored = benchmark(roundtrip)
    assert np.array_equal(restored.totals(), accumulator.totals())
