"""Fig. 10 — per-cluster temporal heatmaps (04-24 January 2023).

Paper claims: orange clusters peak at commuting hours with quiet
weekends and a near-empty 19 Jan strike day (milder for the non-capital
cluster 7); green clusters show sporadic event bursts (the NBA game on
the 19th for cluster 8, the Sirha Lyon fair on 19-24 Jan for cluster 5);
red clusters are diurnal 10:00-20:00, with cluster 3 idle on weekends and
after office hours and cluster 2 showing a Sunday dip and higher
nighttime traffic than cluster 1.
"""

import numpy as np

from repro.analysis.temporal import cluster_temporal_heatmap
from repro.datagen.calendar import SIRHA_DAYS, STRIKE_DAY

from conftest import run_once


def test_fig10_cluster_temporal_heatmaps(benchmark, dataset, profile):
    labels = profile.labels

    def build_all():
        return {
            cluster: cluster_temporal_heatmap(
                dataset, labels, cluster, max_antennas=150
            )
            for cluster in sorted(profile.cluster_sizes())
        }

    heatmaps = run_once(benchmark, build_all)

    # --- orange group: commute peaks, weekends off, strike day ----------
    for cluster in (0, 4, 7):
        heatmap = heatmaps[cluster]
        assert heatmap.is_bimodal_commute(), f"cluster {cluster} not bimodal"
        assert heatmap.weekend_weekday_ratio() < 0.5, (
            f"cluster {cluster} weekend ratio "
            f"{heatmap.weekend_weekday_ratio():.2f}"
        )
    strike0 = heatmaps[0].strike_suppression()
    strike4 = heatmaps[4].strike_suppression()
    strike7 = heatmaps[7].strike_suppression()
    assert strike0 < 0.25 and strike4 < 0.25, (
        f"Paris commuter strike ratios {strike0:.2f}/{strike4:.2f}"
    )
    assert strike7 > 1.5 * strike0, (
        "the strike must hit non-capital commuting more mildly"
    )

    # --- green group: sporadic event bursts -----------------------------
    for cluster in (6, 8):
        assert heatmaps[cluster].burstiness() > 4, (
            f"cluster {cluster} burstiness {heatmaps[cluster].burstiness():.1f}"
        )
    # The paper's two anecdotes are single-venue events (the NBA game at
    # the Accor Arena, the Sirha fair at Eurexpo Lyon), so they are
    # asserted on the hosting site's antennas: a whole-cluster median
    # would dilute one venue among dozens.
    from repro.analysis.temporal import cluster_temporal_heatmap as _heatmap
    from repro.datagen.environments import EnvironmentType

    nba_site = next(
        s.site_id for s in dataset.sites
        if s.env_type == EnvironmentType.STADIUM and s.is_paris
    )
    nba_members = np.array([
        a.antenna_id for a in dataset.antennas if a.site_id == nba_site
    ])
    site_labels = np.full(dataset.n_antennas, -1)
    site_labels[nba_members] = 99
    nba_heatmap = _heatmap(dataset, site_labels, 99)
    # 19 Jan is a Thursday — not a fixture day — yet the NBA evening
    # bursts at the hosting arena.
    other_thursdays = [np.datetime64(d) for d in
                       ("2023-01-05", "2023-01-12")]
    nba_day = nba_heatmap.day_total(STRIKE_DAY)
    quiet = np.mean([nba_heatmap.day_total(d) for d in other_thursdays])
    assert nba_day > 2.0 * quiet, (
        f"NBA burst missing: 19 Jan total {nba_day:.2f} vs other "
        f"Thursdays {quiet:.2f}"
    )

    # Sirha Lyon: continuous elevated daytime traffic 19-24 Jan at the
    # Lyon expo site.
    sirha_site = next(
        s.site_id for s in dataset.sites
        if s.env_type == EnvironmentType.EXPO and s.city == "Lyon"
    )
    sirha_members = np.array([
        a.antenna_id for a in dataset.antennas if a.site_id == sirha_site
    ])
    site_labels = np.full(dataset.n_antennas, -1)
    site_labels[sirha_members] = 99
    sirha_heatmap = _heatmap(dataset, site_labels, 99)
    sirha_days = np.arange(SIRHA_DAYS[0], SIRHA_DAYS[1])
    sirha_mean = np.mean([sirha_heatmap.day_total(d) for d in sirha_days])
    before = np.mean([
        sirha_heatmap.day_total(d)
        for d in np.arange(np.datetime64("2023-01-09"),
                           np.datetime64("2023-01-13"))
    ])
    assert sirha_mean > 1.2 * before, (
        f"Sirha burst missing: fair days {sirha_mean:.2f} vs before "
        f"{before:.2f}"
    )

    # --- red group: diurnal; office vs commercial contrasts -------------
    assert heatmaps[3].business_hours_share() > 0.6
    assert heatmaps[3].weekend_weekday_ratio() < 0.3, "cluster 3 weekend idle"
    for cluster in (1, 2):
        assert heatmaps[cluster].weekend_weekday_ratio() > 0.6, (
            f"cluster {cluster} must keep weekend traffic"
        )
    assert heatmaps[2].night_share() > heatmaps[1].night_share(), (
        "cluster 2 (hotels/hospitals) must be more nocturnal than cluster 1"
    )
    # Cluster 2's Sunday dip.
    dows = (heatmaps[2].dates.astype("datetime64[D]").view("int64") + 3) % 7
    sundays = heatmaps[2].values[dows == 6].sum(axis=1).mean()
    saturdays = heatmaps[2].values[dows == 5].sum(axis=1).mean()
    assert sundays < saturdays, "cluster 2 must dip on Sundays"

    print(f"\n[fig10] strike-day ratios: c0={strike0:.2f} c4={strike4:.2f} "
          f"c7={strike7:.2f} (paper: strike empties Paris commuting)")
    print(f"[fig10] burstiness: c6={heatmaps[6].burstiness():.1f} "
          f"c8={heatmaps[8].burstiness():.1f} (event venues)")
    print(f"[fig10] night share: c2={heatmaps[2].night_share():.2f} "
          f"c1={heatmaps[1].night_share():.2f}")
