"""Instrumentation-overhead benchmarks for ``repro.obs``.

The acceptance bound for the observability layer is that wrapping a hot
path in :func:`~repro.obs.timed_stage` (with tracing enabled and the
stage histogram live) costs **< 5%** of the bare path's wall time.  The
two hot paths measured are the ones the pipeline and serving tiers
actually instrument:

* the RCA feature transform (``rsca`` over an 800 x 73 totals matrix),
  wrapped exactly as ``ICNProfiler.fit`` wraps it;
* the serving vote (``FrozenProfile.vote`` over a 64-row batch),
  wrapped exactly as ``ProfileService._classify_batch`` wraps it.

Methodology: interleaved min-of-repeats.  Bare and instrumented
variants alternate within each round so slow-machine drift (thermal,
noisy neighbours) hits both equally, and the *minimum* round time is
compared — the min is the least-noise estimate of true cost.  A
micro-benchmark of the disabled-tracing ``span`` fast path rides along
in ``extra_info`` for regression tracking.
"""

import time

import numpy as np
import pytest

from repro.core.cluster import AgglomerativeClustering
from repro.core.rca import rsca
from repro.ml.forest import RandomForestClassifier
from repro.obs import (
    MetricsRegistry,
    disable_tracing,
    enable_tracing,
    span,
    timed_stage,
)
from repro.stream import FrozenProfile

N_ANTENNAS = 800
N_SERVICES = 73
VOTE_ROWS = 64

#: Interleaved timing rounds; the minimum round is compared.
ROUNDS = 30
#: Inner iterations per round (amortises the clock read).
INNER = 5

#: Acceptance bound from the issue: instrumentation adds < 5%.
MAX_OVERHEAD = 0.05
#: Headroom asserted in CI: timer jitter on shared runners can exceed
#: the real overhead, so the hard assert allows 2x the bound while the
#: measured ratio is recorded in ``extra_info`` for the calibrated run.
ASSERT_CEILING = 2 * MAX_OVERHEAD


@pytest.fixture(scope="module")
def totals():
    rng = np.random.default_rng(0)
    return rng.lognormal(0.0, 1.0, size=(N_ANTENNAS, N_SERVICES))


@pytest.fixture(scope="module")
def frozen(totals):
    features = rsca(totals)
    labels = AgglomerativeClustering(n_clusters=9,
                                     linkage="ward").fit_predict(features)
    surrogate = RandomForestClassifier(n_estimators=20, max_depth=6,
                                       random_state=0)
    surrogate.fit(features, labels)
    clusters = np.unique(labels)
    centroids = np.vstack(
        [features[labels == c].mean(axis=0) for c in clusters]
    )
    return FrozenProfile(
        features=features,
        labels=labels,
        antenna_ids=np.arange(N_ANTENNAS, dtype=np.int64),
        clusters=clusters,
        centroids=centroids,
        service_names=tuple(f"service_{j}" for j in range(N_SERVICES)),
        surrogate=surrogate,
        service_totals=totals.sum(axis=0),
    )


def _interleaved_min(bare, instrumented, rounds=ROUNDS, inner=INNER):
    """Minimum round time for each variant, alternated within rounds.

    Returns ``(min_bare_s, min_instrumented_s)`` where each round time
    covers ``inner`` calls.
    """
    best_bare = float("inf")
    best_inst = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(inner):
            bare()
        best_bare = min(best_bare, time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(inner):
            instrumented()
        best_inst = min(best_inst, time.perf_counter() - start)
    return best_bare, best_inst


def _overhead_ratio(bare_s, instrumented_s):
    return (instrumented_s - bare_s) / bare_s


@pytest.fixture()
def tracing():
    """Tracing enabled with a fresh store for the instrumented variant."""
    store = enable_tracing(capacity=8192, clear=True)
    try:
        yield store
    finally:
        disable_tracing()
        store.clear()


class TestInstrumentationOverhead:
    def test_rca_overhead_under_bound(self, benchmark, totals, tracing):
        registry = MetricsRegistry()

        def bare():
            rsca(totals)

        def instrumented():
            with timed_stage("pipeline.rca", registry=registry,
                             rows=int(totals.shape[0])):
                rsca(totals)

        # Warm both paths before timing.
        bare()
        instrumented()
        bare_s, inst_s = _interleaved_min(bare, instrumented)
        ratio = _overhead_ratio(bare_s, inst_s)

        benchmark.extra_info["bare_ms"] = bare_s / INNER * 1e3
        benchmark.extra_info["instrumented_ms"] = inst_s / INNER * 1e3
        benchmark.extra_info["overhead_ratio"] = ratio
        benchmark.extra_info["bound"] = MAX_OVERHEAD
        benchmark(instrumented)

        assert ratio < ASSERT_CEILING, (
            f"RCA instrumentation overhead {ratio:.1%} exceeds "
            f"{ASSERT_CEILING:.0%} (bound {MAX_OVERHEAD:.0%})"
        )

    def test_vote_overhead_under_bound(self, benchmark, frozen, tracing):
        registry = MetricsRegistry()
        rng = np.random.default_rng(1)
        batch = frozen.features[
            rng.integers(0, N_ANTENNAS, size=VOTE_ROWS)
        ]

        def bare():
            frozen.vote(batch)

        def instrumented():
            with timed_stage("serve.vote", registry=registry,
                             rows=VOTE_ROWS):
                frozen.vote(batch)

        bare()
        instrumented()
        bare_s, inst_s = _interleaved_min(bare, instrumented)
        ratio = _overhead_ratio(bare_s, inst_s)

        benchmark.extra_info["bare_ms"] = bare_s / INNER * 1e3
        benchmark.extra_info["instrumented_ms"] = inst_s / INNER * 1e3
        benchmark.extra_info["overhead_ratio"] = ratio
        benchmark.extra_info["bound"] = MAX_OVERHEAD
        benchmark(instrumented)

        assert ratio < ASSERT_CEILING, (
            f"vote instrumentation overhead {ratio:.1%} exceeds "
            f"{ASSERT_CEILING:.0%} (bound {MAX_OVERHEAD:.0%})"
        )


class TestFullStackOverhead:
    def test_vote_with_slo_and_exemplars_under_bound(
        self, benchmark, frozen, tracing
    ):
        """The whole telemetry stack on the vote path stays < 5%.

        The instrumented variant carries everything PR 5 adds on top of
        plain ``timed_stage``: tracing is live so every stage
        observation retains a histogram exemplar, and an
        :class:`SLOEngine` + :class:`AlertManager` tick/evaluate once
        per round — the scrape-cadence cost a serving node pays when
        ``/metrics`` is polled while it classifies.
        """
        from repro.obs.alerts import AlertManager, default_rules
        from repro.obs.slo import SLOEngine, default_slos

        registry = MetricsRegistry()
        clock = {"t": 0.0}
        engine = SLOEngine(
            default_slos(registry, window_s=60.0), registry=registry,
            clock=lambda: clock["t"],
        )
        manager = AlertManager(
            engine, default_rules(engine), registry=registry,
            clock=lambda: clock["t"],
        )
        rng = np.random.default_rng(2)
        batch = frozen.features[
            rng.integers(0, N_ANTENNAS, size=VOTE_ROWS)
        ]

        def bare():
            frozen.vote(batch)

        calls = {"n": 0}

        def instrumented():
            with timed_stage("serve.vote", registry=registry,
                             rows=VOTE_ROWS):
                frozen.vote(batch)
            calls["n"] += 1
            if calls["n"] % INNER == 0:  # one scrape per timing round
                clock["t"] += 1.0
                engine.tick()
                manager.evaluate()

        bare()
        instrumented()
        bare_s, inst_s = _interleaved_min(bare, instrumented)
        ratio = _overhead_ratio(bare_s, inst_s)

        # The exemplar machinery actually ran: the stage histogram
        # retained trace-correlated exemplars.
        family = registry.get("repro_stage_seconds")
        assert family is not None
        exemplars = [
            e for _, child in family.series() for e in child.exemplars()
        ]
        assert exemplars, "no exemplars retained on the stage histogram"
        assert engine.n_samples("serve-availability") > 0

        benchmark.extra_info["bare_ms"] = bare_s / INNER * 1e3
        benchmark.extra_info["instrumented_ms"] = inst_s / INNER * 1e3
        benchmark.extra_info["overhead_ratio"] = ratio
        benchmark.extra_info["bound"] = MAX_OVERHEAD
        benchmark(instrumented)

        assert ratio < ASSERT_CEILING, (
            f"full telemetry stack overhead {ratio:.1%} exceeds "
            f"{ASSERT_CEILING:.0%} (bound {MAX_OVERHEAD:.0%})"
        )


class TestSpanMicrocost:
    def test_disabled_span_is_nanoseconds(self, benchmark):
        """The disabled fast path must stay sub-microsecond per span."""
        disable_tracing()

        def run():
            with span("noop"):
                pass

        per_span = benchmark(run)
        del per_span

    def test_enabled_span_microcost(self, benchmark, tracing):
        def run():
            with span("hot", rows=1):
                pass

        benchmark(run)
        benchmark.extra_info["spans_recorded"] = len(tracing)
