"""Fig. 11 — per-service temporal heatmaps for key services.

Paper claims: Spotify peaks at morning commute hours across the orange
group; transport-website usage is lively in clusters 0/4 but scattered in
7; Snapchat tracks event traffic at venues while Waze peaks ~2 h later
(attendees driving home) and Netflix is under-used at venues; Microsoft
Teams loads cluster 3 during working hours (with lunch-break streaming),
Netflix peaks at lunch in offices but daytime/night in clusters 1/2, and
Waze is strongest in cluster 1 (tunnels/airports).
"""

import numpy as np

from repro.analysis.temporal import service_temporal_heatmap

from conftest import run_once


def test_fig11_service_temporal_heatmaps(benchmark, dataset, profile):
    labels = profile.labels

    def build(cluster, service):
        return service_temporal_heatmap(
            dataset, labels, cluster, service, max_antennas=120
        )

    panels = run_once(benchmark, lambda: {
        ("Spotify", 0): build(0, "Spotify"),
        ("Spotify", 4): build(4, "Spotify"),
        ("Spotify", 7): build(7, "Spotify"),
        ("Transportation Websites", 0): build(0, "Transportation Websites"),
        ("Snapchat", 6): build(6, "Snapchat"),
        ("Waze", 6): build(6, "Waze"),
        ("Netflix", 6): build(6, "Netflix"),
        ("Microsoft Teams", 3): build(3, "Microsoft Teams"),
        ("Microsoft Teams", 1): build(1, "Microsoft Teams"),
        ("Netflix", 3): build(3, "Netflix"),
        ("Netflix", 2): build(2, "Netflix"),
        ("Waze", 1): build(1, "Waze"),
        ("Waze", 3): build(3, "Waze"),
    })

    # Spotify: morning commute peak across the orange group.
    for cluster in (0, 4, 7):
        peaks = panels[("Spotify", cluster)].peak_hours(4)
        assert any(7 <= p <= 9 for p in peaks), (
            f"Spotify cluster {cluster} peaks {sorted(peaks)}"
        )
    # Transport websites lively in cluster 0 (commute shape).
    assert panels[("Transportation Websites", 0)].is_bimodal_commute()

    # Venues: Snapchat tracks events; Waze lags by ~2 h; Netflix low.
    snap_peak = panels[("Snapchat", 6)].peak_hours(1)[0]
    waze_peak = panels[("Waze", 6)].peak_hours(1)[0]
    assert 18 <= snap_peak <= 23
    assert 1 <= (waze_peak - snap_peak) % 24 <= 3, (
        f"Waze must lag Snapchat: snap {snap_peak}, waze {waze_peak}"
    )
    assert panels[("Snapchat", 6)].burstiness() > 4

    # Offices: Teams in working hours, Netflix at lunch.
    assert panels[("Microsoft Teams", 3)].business_hours_share() > 0.75
    teams_weekend = panels[("Microsoft Teams", 3)].weekend_weekday_ratio()
    assert teams_weekend < 0.3
    netflix_office_peak = panels[("Netflix", 3)].peak_hours(1)[0]
    assert 12 <= netflix_office_peak <= 14, (
        f"office Netflix peak {netflix_office_peak} (paper: lunch hours)"
    )
    # Netflix in cluster 2 (hotels at night): evening/night peak.
    netflix_hotel_peak = panels[("Netflix", 2)].peak_hours(1)[0]
    assert netflix_hotel_peak >= 19 or netflix_hotel_peak <= 1

    # Waze: weekday evening pattern in cluster 3 (home-bound employees)
    # versus the broad cluster 1 usage.
    waze1 = panels[("Waze", 1)]
    assert waze1.weekend_weekday_ratio() > 0.5
    waze3_weekend = panels[("Waze", 3)].weekend_weekday_ratio()
    assert waze3_weekend < waze1.weekend_weekday_ratio(), (
        "cluster 3 Waze is a weekday commute signal"
    )

    print(f"\n[fig11] Spotify commute peaks: "
          f"c0 {sorted(panels[('Spotify', 0)].peak_hours(2))}, "
          f"c7 {sorted(panels[('Spotify', 7)].peak_hours(2))}")
    print(f"[fig11] venue Snapchat peak {snap_peak}:00, "
          f"Waze peak {waze_peak}:00 (post-event lag)")
    print(f"[fig11] office Netflix peak {netflix_office_peak}:00 (lunch), "
          f"hotel Netflix peak {netflix_hotel_peak}:00")
