"""Shared paper-scale state for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's tables or figures at the
original scale (4,762 indoor antennas, 73 services) and asserts the
paper's qualitative findings (the "shape criteria" of DESIGN.md section
4).  The expensive artefacts — the dataset, the fitted aligned profile,
the SHAP explanations, the outdoor classification — are computed once per
session and shared.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import ICNProfiler
from repro.datagen.dataset import generate_dataset

#: Seed of the headline reproduction run.
PAPER_SEED = 0


@pytest.fixture(scope="session")
def dataset():
    """The paper-scale synthetic dataset."""
    return generate_dataset(master_seed=PAPER_SEED)


@pytest.fixture(scope="session")
def profile(dataset):
    """The fitted pipeline, aligned to the paper's cluster numbering."""
    profiler = ICNProfiler(n_clusters=9)
    return profiler.fit(dataset, align_to=dataset.archetypes())


@pytest.fixture(scope="session")
def explanations(profile):
    """Per-cluster SHAP summaries (shared by Fig. 5 and Fig. 11 benches)."""
    return profile.explain(samples_per_cluster=25)


@pytest.fixture(scope="session")
def outdoor(dataset):
    """The 20,000-antenna outdoor population of Section 5.3."""
    return dataset.outdoor(count=20000)


def run_once(benchmark, fn):
    """Benchmark an expensive stage with a single measured round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
