"""Extension — Section 7 applications: slicing, caching, energy.

The paper's discussion proposes environment-aware resource orchestration:
slices tuned to each cluster's characterizing applications, content
caching per environment, and energy adaptation in predictable idle hours.
This benchmark runs all three planners on the fitted profile and asserts
the operational claims quantitatively.
"""

import numpy as np

from repro.apps import (
    cluster_aware_gain,
    fleet_energy_saving,
    plan_energy,
    plan_slices,
)

from conftest import run_once


def test_extension_operations_planning(benchmark, dataset, profile):
    def plan_everything():
        slices = plan_slices(dataset, profile, max_antennas=60)
        caches = cluster_aware_gain(
            dataset.totals, profile.labels, dataset.catalog, budget=10
        )
        energy = plan_energy(dataset, profile, max_antennas=60)
        return slices, caches, energy

    slices, (aware_hit, global_hit), energy = run_once(
        benchmark, plan_everything
    )

    # Slicing: commuter slices are commute-windowed; venue slices are
    # event-driven; office slice idles weekends.
    assert any(7 <= h <= 9 for h in slices[0].busy_hours)
    assert any(17 <= h <= 19 for h in slices[0].busy_hours)
    assert slices[6].event_driven and slices[8].event_driven
    assert slices[3].weekend_factor < 0.3
    office_services = set(slices[3].priority_services)
    assert office_services & {"Microsoft Teams", "LinkedIn", "Slack",
                              "Zoom", "Microsoft 365"}

    # Caching: environment-aware selection beats the nationwide policy.
    assert aware_hit > global_hit
    assert aware_hit > 0.3

    # Energy: offices and commuter clusters allow large savings with
    # minimal traffic at risk; fleet-wide saving is substantial.
    assert energy[3].energy_saving > 0.3
    assert energy[0].energy_saving > 0.2
    for schedule in energy.values():
        assert schedule.traffic_at_risk < 0.12
    fleet = fleet_energy_saving(energy, profile.cluster_sizes())
    assert fleet > 0.15

    print(f"\n[ext/ops] cache hit: cluster-aware {aware_hit:.1%} vs "
          f"global {global_hit:.1%}")
    print(f"[ext/ops] fleet energy saving {fleet:.1%}")
    for cluster in sorted(slices):
        print(f"[ext/ops] {slices[cluster].describe()}")
    for cluster in sorted(energy):
        print(f"[ext/ops] {energy[cluster].describe()}")
